//! Every concrete claim made in the paper's text, as executable tests.

use chasekit::prelude::*;

/// §1, Example 1: the chase adds hasFather(bob, z1), person(z1), then is
/// triggered again by person(z1), forever.
#[test]
fn example1_first_steps_match_the_paper() {
    let p = Program::parse("person(bob). person(X) -> hasFather(X, Y), person(Y).").unwrap();
    let run = chase_facts(&p, ChaseVariant::SemiOblivious, &Budget::applications(2));

    let person = p.vocab.pred("person").unwrap();
    let has_father = p.vocab.pred("hasFather").unwrap();
    // After two applications: person(bob), hasFather(bob,z1), person(z1),
    // hasFather(z1,z2), person(z2).
    assert_eq!(run.instance.with_pred(person).len(), 3);
    assert_eq!(run.instance.with_pred(has_father).len(), 2);
    assert_eq!(run.outcome, StopReason::Applications);
}

/// §1: "the chase procedure may run forever, even for extremely simple
/// databases and constraints" — and under every variant here.
#[test]
fn example1_diverges_under_all_variants_and_the_decider_knows() {
    let p = Program::parse("person(X) -> hasFather(X, Y), person(Y).").unwrap();
    for variant in [ChaseVariant::SemiOblivious, ChaseVariant::Oblivious] {
        let d = decide(&p, variant, &Budget::default());
        assert_eq!(d.terminates, Some(false), "{variant}");
    }
}

/// §2, Example 2: D = {p(a,b)}, p(X,Y) -> ∃Z p(Y,Z): there is exactly one
/// chase sequence (modulo null names) and it is non-terminating; the
/// instances grow one atom at a time: I_i = I_{i-1} ∪ {p(z_{i-1}, z_i)}.
#[test]
fn example2_instances_grow_one_atom_per_step() {
    let p = Program::parse("p(a, b). p(X, Y) -> p(Y, Z).").unwrap();
    for steps in 1..6u64 {
        let run = chase_facts(&p, ChaseVariant::SemiOblivious, &Budget::applications(steps));
        assert_eq!(run.instance.len() as u64, 1 + steps, "after {steps} steps");
        assert_eq!(run.stats.nulls_minted, steps);
    }
}

/// §2: CT°_∀ = CT°_∃ ⊆ CTˢ°_∀ = CTˢ°_∃ — the oblivious-terminating sets
/// are semi-oblivious-terminating; the separator shows strictness.
#[test]
fn oblivious_termination_implies_semi_oblivious() {
    let samples = [
        "p(X, Y) -> p(Y, Z).",
        "r(X, Y) -> r(X, Z).",
        "p(X, Y) -> q(X, Y).",
        "p(X) -> q(X, Z). q(X, Z) -> p(X).",
        "a(X) -> b(X, Y). b(X, Y) -> c(Y). c(X) -> a(X).",
    ];
    for src in samples {
        let p = Program::parse(src).unwrap();
        let o = decide(&p, ChaseVariant::Oblivious, &Budget::default()).terminates;
        let so = decide(&p, ChaseVariant::SemiOblivious, &Budget::default()).terminates;
        if o == Some(true) {
            assert_eq!(so, Some(true), "CT-o ⊆ CT-so violated on {src}");
        }
    }
    // Strictness witness.
    let sep = Program::parse("r(X, Y) -> r(X, Z).").unwrap();
    assert_eq!(decide(&sep, ChaseVariant::Oblivious, &Budget::default()).terminates, Some(false));
    assert_eq!(
        decide(&sep, ChaseVariant::SemiOblivious, &Budget::default()).terminates,
        Some(true)
    );
}

/// §3: "simple linear TGDs are powerful enough for capturing ... inclusion
/// dependencies, as well as key description logics such as DL-Lite."
#[test]
fn inclusion_dependencies_are_simple_linear() {
    let p = Program::parse(
        "teaches(X, C) -> course(C). course(C) -> heldIn(C, R).",
    )
    .unwrap();
    assert_eq!(p.class(), RuleClass::SimpleLinear);
}

/// §3.1, Theorem 1: CT° ∩ SL = RA ∩ SL and CTˢ° ∩ SL = WA ∩ SL
/// (constant-free rules; spot-checks — the E1 experiment does 2000).
#[test]
fn theorem1_spot_checks() {
    let samples = [
        "p(X, Y) -> p(Y, Z).",
        "r(X, Y) -> r(X, Z).",
        "p(X, Y) -> q(X, Y).",
        "a(X) -> b(X, Y). b(X, Y) -> c(Y). c(X) -> a(X).",
        "person(X) -> hasFather(X, Y), person(Y).",
    ];
    for src in samples {
        let p = Program::parse(src).unwrap();
        assert_eq!(p.class(), RuleClass::SimpleLinear);
        assert_eq!(
            decide(&p, ChaseVariant::SemiOblivious, &Budget::default()).terminates,
            Some(is_weakly_acyclic(&p)),
            "CT-so vs WA on {src}"
        );
        assert_eq!(
            decide(&p, ChaseVariant::Oblivious, &Budget::default()).terminates,
            Some(is_richly_acyclic(&p)),
            "CT-o vs RA on {src}"
        );
    }
}

/// §3.1, Theorem 2 context: "a dangerous cycle does not necessarily
/// correspond to an infinite chase derivation" for (non-simple) linear
/// TGDs — the repeated-variable witness.
#[test]
fn theorem2_dangerous_cycle_can_be_unrealizable() {
    let p = Program::parse("s(X) -> e(X, Z). e(X, X) -> s(X).").unwrap();
    assert_eq!(p.class(), RuleClass::Linear);
    assert!(!is_weakly_acyclic(&p), "WA sees a dangerous cycle");
    assert_eq!(
        decide(&p, ChaseVariant::SemiOblivious, &Budget::default()).terminates,
        Some(true),
        "but the chase terminates on every database"
    );
}

/// §3.2, Theorem 4: guarded decision procedure, including over standard
/// databases (constants 0/1 present).
#[test]
fn theorem4_guarded_decisions_standard_and_plain() {
    let diverging = Program::parse("r(X, Y), p(Y) -> r(Y, Z), p(Z).").unwrap();
    assert_eq!(diverging.class(), RuleClass::Guarded);
    for standard in [false, true] {
        let mut cfg = GuardedConfig::new(ChaseVariant::SemiOblivious);
        cfg.standard = standard;
        let verdict = decide_guarded(&diverging, cfg).unwrap().verdict;
        assert_eq!(verdict.terminates(), Some(false), "standard={standard}");
    }

    let terminating = Program::parse("r(X, Y), p(Y) -> r(Y, Z).").unwrap();
    for standard in [false, true] {
        let mut cfg = GuardedConfig::new(ChaseVariant::SemiOblivious);
        cfg.standard = standard;
        let verdict = decide_guarded(&terminating, cfg).unwrap().verdict;
        assert_eq!(verdict.terminates(), Some(true), "standard={standard}");
    }
}

/// §4 (future work): restricted chase on single-head linear TGDs is
/// decided in polynomial time; Example 2's rule diverges from p(a,b) but
/// terminates from the self-loop database.
#[test]
fn future_work_restricted_chase() {
    let p = Program::parse("p(X, Y) -> p(Y, Z).").unwrap();
    let v = restricted_verdict(&p);
    assert_eq!(v.terminates, Some(false));

    // From the self-loop the restricted chase stops at once.
    let looped = Program::parse("p(a, a). p(X, Y) -> p(Y, Z).").unwrap();
    let run = chase_facts(&looped, ChaseVariant::Restricted, &Budget::default());
    assert_eq!(run.outcome, StopReason::Saturated);
    assert_eq!(run.instance.len(), 1);

    // From the path it runs away.
    let path = Program::parse("p(a, b). p(X, Y) -> p(Y, Z).").unwrap();
    let run = chase_facts(&path, ChaseVariant::Restricted, &Budget::applications(50));
    assert_eq!(run.outcome, StopReason::Applications);
}
