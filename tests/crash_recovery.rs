//! Crash/recovery differential suite for the durability layer.
//!
//! The headline guarantee under test: **kill the chase at any injected
//! fault point, recover from the journal + last good snapshot, continue —
//! and the final state is bit-identical to a run that never crashed**, for
//! every corpus program, all three chase variants, at 1, 2, and 4 threads.
//! "Bit-identical" is checkpoint-text equality (instance, queue, identity
//! set, RNG state, counters — hence also the trace `core_seq`), plus
//! derivation-DAG and Skolem-ancestry equality for tracked runs, plus
//! trace-stream suffix equality for the recovered continuation.
//!
//! Failpoint state is process-global, so every in-process test that arms
//! one serializes on [`FAILPOINT_LOCK`]. The spawned-binary tests pass the
//! spec through `CHASEKIT_FAILPOINTS` instead and need no lock.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use proptest::prelude::*;

use chasekit::engine::{
    failpoint, needs_recovery, recover, write_snapshot_atomic, ChaseConfig, ChaseMachine,
    Checkpoint, CheckpointError, JournalWriter, JsonlSink, StopReason, TraceSink,
};
use chasekit::prelude::*;

const VARIANTS: [ChaseVariant; 3] =
    [ChaseVariant::Oblivious, ChaseVariant::SemiOblivious, ChaseVariant::Restricted];

/// Serializes tests that arm process-global failpoints.
static FAILPOINT_LOCK: Mutex<()> = Mutex::new(());

fn failpoint_guard() -> MutexGuard<'static, ()> {
    FAILPOINT_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The chase's initial instance for a program: its facts, or the critical
/// instance when it carries none.
fn seed(program: &mut Program) -> Instance {
    if program.facts().is_empty() {
        CriticalInstance::build(program).instance
    } else {
        Instance::from_atoms(program.facts().iter().cloned())
    }
}

fn state_text(m: &ChaseMachine<'_>) -> String {
    m.snapshot().to_text().expect("untracked runs serialize")
}

/// A scratch directory unique to this test, cleaned before use.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("chasekit-crash-recovery-{}", std::process::id()))
        .join(test);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn budget(total: u64) -> Budget {
    Budget::applications(total).with_atoms(4_000)
}

/// Drives a journaled run with periodic snapshots the way the CLI does,
/// abandoning everything mid-flight at the first durability casualty — a
/// sticky journal error ([`StopReason::Io`]), a failed snapshot/sync, or
/// an injected worker panic. Whatever the files hold at that moment is
/// exactly what a killed process leaves behind.
#[allow(clippy::too_many_arguments)]
fn durable_run_until_crash(
    program: &Program,
    variant: ChaseVariant,
    initial: &Instance,
    threads: usize,
    every: u64,
    total: u64,
    ckpt: &Path,
    journal: &Path,
    flush_every: u64,
) {
    let run = AssertUnwindSafe(|| {
        let cfg = ChaseConfig::of(variant);
        let mut machine = ChaseMachine::new(program, cfg, initial.clone());
        match JournalWriter::for_machine(journal, &machine) {
            Ok(j) => machine.set_journal(j.with_flush_every(flush_every)),
            Err(_) => return, // crashed creating the journal
        }
        loop {
            let target = machine.stats().applications.saturating_add(every).min(total);
            let stop = machine.run_parallel(&budget(target), threads);
            if stop == StopReason::Io {
                return; // journal write died; run stopped at a boundary
            }
            if stop == StopReason::Applications && target < total {
                // Periodic snapshot: sync journal, publish, re-base.
                let text = machine.snapshot().to_text().unwrap();
                let mut j = machine.take_journal().unwrap();
                if j.sync().is_err() {
                    return;
                }
                if write_snapshot_atomic(ckpt, &text).is_err() {
                    return;
                }
                match JournalWriter::for_machine(journal, &machine) {
                    Ok(j) => machine.set_journal(j.with_flush_every(flush_every)),
                    Err(_) => return,
                }
                continue;
            }
            // Ran to the end without a casualty (the fault never landed in
            // an executed window): publish the final state cleanly.
            let text = machine.snapshot().to_text().unwrap();
            if let Some(mut j) = machine.take_journal() {
                let _ = j.sync();
            }
            let _ = write_snapshot_atomic(ckpt, &text);
            return;
        }
    });
    // An injected worker panic unwinds out of run_parallel; the files are
    // the crash scene either way.
    let _ = catch_unwind(run);
}

/// Recovers from whatever `durable_run_until_crash` left on disk and runs
/// to `total`; returns the final state text.
fn recover_and_finish(
    program: &Program,
    variant: ChaseVariant,
    initial: &Instance,
    threads: usize,
    total: u64,
    ckpt: &Path,
    journal: &Path,
) -> String {
    let snapshot_text = std::fs::read_to_string(ckpt).ok();
    let journal_bytes = std::fs::read(journal).unwrap_or_default();
    let (mut machine, _report) = recover(
        program,
        snapshot_text.as_deref(),
        &journal_bytes,
        initial.clone(),
        ChaseConfig::of(variant),
    )
    .expect("crash scenes always recover");
    machine.run_parallel(&budget(total), threads);
    state_text(&machine)
}

/// Every failpoint the durability layer exposes, armed at a hit index that
/// lands inside a short run. `round.worker` only fires with real fan-out.
const FAULT_PLANS: &[&str] = &[
    "journal.append=error@7",
    "journal.append=short:3@13",
    "journal.sync=error@1",
    "snapshot.write=error@1",
    "snapshot.write=short:40@2",
    "snapshot.rename=error@1",
    "journal.truncate=short:10@1",
    "journal.truncate=short:10@2",
    "round.worker=panic@3",
];

/// The headline differential: corpus (which includes paper Examples 1–2)
/// × all variants × every failpoint × 1/2/4 threads. Crash, recover,
/// continue — final checkpoint text must equal the uninterrupted run's.
#[test]
fn kill_at_every_failpoint_recovers_bit_identical() {
    let _g = failpoint_guard();
    let dir = scratch("differential");
    let ckpt = dir.join("state.ckpt");
    let journal = dir.join("state.journal");
    const EVERY: u64 = 25;
    const TOTAL: u64 = 120;

    for family in chasekit::datagen::corpus() {
        let mut program = family.program;
        let initial = seed(&mut program);
        for variant in VARIANTS {
            // Uninterrupted reference (sequential; PR-2 guarantees every
            // thread count matches it).
            failpoint::clear();
            let mut reference = ChaseMachine::new(
                &program,
                ChaseConfig::of(variant),
                initial.clone(),
            );
            reference.run(&budget(TOTAL));
            let want = state_text(&reference);

            for plan in FAULT_PLANS {
                for threads in [1usize, 2, 4] {
                    if plan.starts_with("round.worker") && threads == 1 {
                        continue; // no workers to panic
                    }
                    let _ = std::fs::remove_file(&ckpt);
                    let _ = std::fs::remove_file(&journal);
                    failpoint::configure(plan).unwrap();
                    durable_run_until_crash(
                        &program, variant, &initial, threads, EVERY, TOTAL, &ckpt, &journal, 1,
                    );
                    failpoint::clear();
                    let got = recover_and_finish(
                        &program, variant, &initial, threads, TOTAL, &ckpt, &journal,
                    );
                    assert_eq!(
                        want, got,
                        "{}: {variant:?} diverged after `{plan}` @ {threads} threads",
                        family.name
                    );
                }
            }
        }
    }
}

/// The same kill-at-every-failpoint differential with journal group
/// commit enabled: batching N records per `write(2)` may lose up to a
/// buffered batch plus a torn line to a crash, but what survives is
/// always a valid journal prefix — so recover-and-continue still lands
/// bit-identical to the uninterrupted run. A reduced corpus slice keeps
/// the sweep affordable; the fault plans and thread counts are the full
/// set that exercises batching (`round.worker` needs fan-out).
#[test]
fn group_commit_kill_at_every_failpoint_recovers_bit_identical() {
    let _g = failpoint_guard();
    let dir = scratch("group-commit-differential");
    let ckpt = dir.join("state.ckpt");
    let journal = dir.join("state.journal");
    const EVERY: u64 = 25;
    const TOTAL: u64 = 120;

    for family in chasekit::datagen::corpus().into_iter().take(4) {
        let mut program = family.program;
        let initial = seed(&mut program);
        for variant in [ChaseVariant::SemiOblivious, ChaseVariant::Restricted] {
            failpoint::clear();
            let mut reference =
                ChaseMachine::new(&program, ChaseConfig::of(variant), initial.clone());
            reference.run(&budget(TOTAL));
            let want = state_text(&reference);

            for flush_every in [8u64, 64] {
                for plan in FAULT_PLANS {
                    for threads in [1usize, 4] {
                        if plan.starts_with("round.worker") && threads == 1 {
                            continue;
                        }
                        let _ = std::fs::remove_file(&ckpt);
                        let _ = std::fs::remove_file(&journal);
                        failpoint::configure(plan).unwrap();
                        durable_run_until_crash(
                            &program,
                            variant,
                            &initial,
                            threads,
                            EVERY,
                            TOTAL,
                            &ckpt,
                            &journal,
                            flush_every,
                        );
                        failpoint::clear();
                        let got = recover_and_finish(
                            &program, variant, &initial, threads, TOTAL, &ckpt, &journal,
                        );
                        assert_eq!(
                            want, got,
                            "{}: {variant:?} diverged after `{plan}` @ {threads} threads, \
                             flush-every {flush_every}",
                            family.name
                        );
                    }
                }
            }
        }
    }
}

/// Derivation-DAG and Skolem-ancestry identity across an interrupt: a
/// tracked run cut at an in-memory snapshot boundary and resumed must
/// produce the same DAG (every edge, parent set, frontier) and the same
/// cyclic-Skolem witness as a straight run. (Text checkpoints exclude
/// tracking by design, so the crash cut here is the in-memory snapshot —
/// the same state the file recovery rebuilds for untracked runs.)
#[test]
fn derivation_and_ancestry_survive_interrupt_resume() {
    for (label, text) in [
        ("example-1", "person(bob). person(X) -> hasFather(X, Y), person(Y)."),
        ("example-2", "p(a, b). p(X, Y) -> p(Y, Z)."),
    ] {
        let mut program = Program::parse(text).unwrap();
        let initial = seed(&mut program);
        for variant in VARIANTS {
            let cfg = ChaseConfig::of(variant).with_derivation().with_skolem();
            let mut straight = ChaseMachine::new(&program, cfg, initial.clone());
            straight.run(&budget(90));

            for cut in [1u64, 13, 50, 89] {
                let mut first = ChaseMachine::new(&program, cfg, initial.clone());
                first.run(&budget(cut));
                let snap = first.snapshot();
                let mut resumed = snap.resume(&program).unwrap();
                resumed.run_parallel(&budget(90), 4);
                assert_eq!(
                    format!("{:?}", straight.derivation()),
                    format!("{:?}", resumed.derivation()),
                    "{label}: {variant:?} DAG diverged at cut {cut}"
                );
                assert_eq!(
                    straight.skolem_cyclic(),
                    resumed.skolem_cyclic(),
                    "{label}: {variant:?} skolem witness at cut {cut}"
                );
                assert_eq!(straight.stats(), resumed.stats(), "{label}: {variant:?} stats");
            }
        }
    }
}

/// A `Write` target readable after the owning machine is dropped.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The recovered continuation's trace is a byte-exact *suffix* of the
/// uninterrupted run's trace: sequence numbers resume contiguously and
/// every core event matches (`core_seq` composes across recovery exactly
/// as it does across checkpoint resume).
#[test]
fn recovered_continuation_traces_a_suffix_of_the_uninterrupted_trace() {
    let _g = failpoint_guard();
    let dir = scratch("trace-suffix");
    let ckpt = dir.join("t.ckpt");
    let journal = dir.join("t.journal");
    let mut program =
        Program::parse("person(bob). person(X) -> hasFather(X, Y), person(Y).").unwrap();
    let initial = seed(&mut program);

    for variant in VARIANTS {
        // Uninterrupted traced reference.
        failpoint::clear();
        let reference = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let sink: Box<dyn TraceSink> = Box::new(JsonlSink::new(reference.clone(), &program));
        let mut machine = ChaseMachine::new_with_trace(
            &program,
            ChaseConfig::of(variant),
            initial.clone(),
            sink,
        );
        machine.run(&budget(80));
        machine.flush_trace();
        let want = String::from_utf8(reference.0.lock().unwrap().clone()).unwrap();

        // Crash an (untraced) journaled run, recover, then trace only the
        // continuation.
        let _ = std::fs::remove_file(&ckpt);
        let _ = std::fs::remove_file(&journal);
        failpoint::configure("journal.append=error@31").unwrap();
        durable_run_until_crash(&program, variant, &initial, 1, 20, 80, &ckpt, &journal, 1);
        failpoint::clear();

        let snapshot_text = std::fs::read_to_string(&ckpt).ok();
        let journal_bytes = std::fs::read(&journal).unwrap_or_default();
        let (mut recovered, report) = recover(
            &program,
            snapshot_text.as_deref(),
            &journal_bytes,
            initial.clone(),
            ChaseConfig::of(variant),
        )
        .unwrap();
        assert!(report.records_replayed > 0, "{variant:?}: the fault must have landed");
        let cont = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        recovered.set_trace_sink(Box::new(JsonlSink::new(cont.clone(), &program)));
        recovered.run(&budget(80));
        recovered.flush_trace();
        let got = String::from_utf8(cont.0.lock().unwrap().clone()).unwrap();

        assert!(!got.is_empty(), "{variant:?}: continuation must trace something");
        assert!(
            want.ends_with(&got),
            "{variant:?}: continuation trace is not a suffix of the reference\n\
             reference tail:\n{}\ncontinuation head:\n{}",
            &want[want.len().saturating_sub(400)..],
            &got[..got.len().min(400)]
        );
    }
}

/// A journal append failure (real I/O error) stops both drivers with
/// [`StopReason::Io`] at a step boundary, leaving a consistent machine.
#[test]
fn journal_failure_stops_with_io_at_a_boundary() {
    let _g = failpoint_guard();
    let dir = scratch("io-stop");
    let mut program =
        Program::parse("person(bob). person(X) -> hasFather(X, Y), person(Y).").unwrap();
    let initial = seed(&mut program);

    for threads in [1usize, 4] {
        failpoint::configure("journal.append=error@10").unwrap();
        let mut machine = ChaseMachine::new(
            &program,
            ChaseConfig::of(ChaseVariant::Oblivious),
            initial.clone(),
        );
        let journal = dir.join(format!("io-{threads}.journal"));
        machine.set_journal(JournalWriter::for_machine(&journal, &machine).unwrap());
        let stop = machine.run_parallel(&budget(100), threads);
        failpoint::clear();
        assert_eq!(stop, StopReason::Io, "@ {threads} threads");
        assert!(machine.journal_failed().is_some());
        // The machine is still consistent: it can snapshot and resume.
        let text = state_text(&machine);
        Checkpoint::from_text(&text).unwrap().resume(&program).unwrap();
    }
}

/// `needs_recovery` draws the line exactly where work would be lost.
#[test]
fn needs_recovery_spots_unreplayed_tails() {
    let _g = failpoint_guard();
    failpoint::clear();
    let dir = scratch("needs-recovery");
    let journal = dir.join("n.journal");
    let mut program =
        Program::parse("person(bob). person(X) -> hasFather(X, Y), person(Y).").unwrap();
    let initial = seed(&mut program);
    let cfg = ChaseConfig::of(ChaseVariant::SemiOblivious);

    let mut machine = ChaseMachine::new(&program, cfg, initial.clone());
    machine.set_journal(JournalWriter::for_machine(&journal, &machine).unwrap());
    machine.run(&budget(10));
    drop(machine.take_journal());
    let bytes = std::fs::read(&journal).unwrap();

    // A fresh machine (0 applications) is behind the journal's 10 records.
    let fresh = ChaseMachine::new(&program, cfg, initial.clone());
    assert!(needs_recovery(&fresh, &bytes));
    // A machine already at 10 applications is fully covered.
    let mut caught_up = ChaseMachine::new(&program, cfg, initial.clone());
    caught_up.run(&budget(10));
    assert!(!needs_recovery(&caught_up, &bytes));
    // Unscannable garbage also demands recovery (recover() explains why).
    assert!(needs_recovery(&fresh, b"not a journal at all\n"));
    // An absent/empty journal never does.
    assert!(!needs_recovery(&fresh, b""));
}

// ---------------------------------------------------------------------------
// Corruption tolerance: no bytes on disk may panic the recovery path.
// ---------------------------------------------------------------------------

/// Reference states for every application count, plus the crash-scene
/// snapshot + journal the corruption cases mutate.
fn corruption_fixture() -> (Program, Instance, Vec<String>, String, Vec<u8>) {
    let mut program =
        Program::parse("person(bob). person(X) -> hasFather(X, Y), person(Y).").unwrap();
    let initial = seed(&mut program);
    let cfg = ChaseConfig::of(ChaseVariant::Oblivious);

    // state_by_apps[k] = checkpoint text after exactly k applications.
    let mut m = ChaseMachine::new(&program, cfg, initial.clone());
    let mut state_by_apps = vec![state_text(&m)];
    for _ in 0..30 {
        m.step().unwrap();
        state_by_apps.push(state_text(&m));
    }

    // Snapshot at 12 applications, journal holding records 1..=30 (base 0:
    // the stale-prefix crash window, so skipping is exercised too).
    let dir = scratch("corruption-fixture");
    let journal_path = dir.join("c.journal");
    let mut w = ChaseMachine::new(&program, cfg, initial.clone());
    w.set_journal(JournalWriter::for_machine(&journal_path, &w).unwrap());
    w.run(&budget(30));
    drop(w.take_journal());
    let journal = std::fs::read(&journal_path).unwrap();
    let snapshot = state_by_apps[12].clone();
    (program, initial, state_by_apps, snapshot, journal)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Flip and truncate arbitrary bytes of the journal: recovery must
    /// either return a structured error or land on a *valid prefix state*
    /// — byte-identical to some uninterrupted run of that length. Never a
    /// panic, never a silently wrong state.
    #[test]
    fn corrupted_journals_never_panic_and_never_lie(
        flips in proptest::collection::vec((0usize..4096, 1u8..255), 0..4),
        cut in prop_oneof![Just(None::<usize>), (0usize..4096).prop_map(Some)],
    ) {
        let (program, initial, state_by_apps, snapshot, mut journal) = corruption_fixture();
        for (pos, mask) in flips {
            let idx = pos % journal.len().max(1);
            if let Some(b) = journal.get_mut(idx) {
                *b ^= mask;
            }
        }
        if let Some(c) = cut {
            journal.truncate(c % (journal.len() + 1));
        }
        match recover(
            &program,
            Some(&snapshot),
            &journal,
            initial.clone(),
            ChaseConfig::of(ChaseVariant::Oblivious),
        ) {
            Err(e) => {
                // Structured, displayable, and specifically not a panic.
                let shown = format!("{e}");
                prop_assert!(!shown.is_empty());
            }
            Ok((m, report)) => {
                let apps = m.stats().applications as usize;
                prop_assert!(apps >= 12, "cannot land before the snapshot");
                prop_assert!(apps < state_by_apps.len());
                prop_assert_eq!(&state_text(&m), &state_by_apps[apps]);
                prop_assert_eq!(
                    report.final_applications,
                    apps as u64
                );
            }
        }
    }

    /// Flip and truncate arbitrary bytes of the snapshot: `from_text` (and
    /// hence recovery) must reject every actual change via the CRC trailer
    /// or a structured parse error — never panic, never resume wrong state.
    #[test]
    fn corrupted_snapshots_never_panic_and_never_lie(
        flip_pos in 0usize..8192,
        mask in 1u8..255,
        cut in prop_oneof![Just(None::<usize>), (0usize..8192).prop_map(Some)],
    ) {
        let (program, initial, state_by_apps, snapshot, journal) = corruption_fixture();
        let mut bytes = snapshot.clone().into_bytes();
        let changed_len = cut.map(|c| c % (bytes.len() + 1));
        if let Some(c) = changed_len {
            bytes.truncate(c);
        }
        let mut flipped = false;
        let idx = flip_pos % bytes.len().max(1);
        if let Some(b) = bytes.get_mut(idx) {
            let before = *b;
            *b ^= mask;
            flipped = *b != before;
        }
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        let unchanged = mutated == snapshot;
        match recover(
            &program,
            Some(&mutated),
            &journal,
            initial.clone(),
            ChaseConfig::of(ChaseVariant::Oblivious),
        ) {
            Err(e) => {
                let shown = format!("{e}");
                prop_assert!(!shown.is_empty());
            }
            Ok((m, _)) => {
                // Only a mutation that left the file semantically intact
                // (e.g. truncation after `end` removing just the trailer,
                // with no effective flip) may recover — and then it must
                // recover the *correct* prefix state.
                let apps = m.stats().applications as usize;
                prop_assert!(apps < state_by_apps.len());
                prop_assert_eq!(&state_text(&m), &state_by_apps[apps]);
                if !unchanged {
                    // Any accepted change must be trailer-only.
                    prop_assert!(
                        !flipped || changed_len.is_some(),
                        "a pure byte flip inside the file must be caught by the CRC"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Real-process kill: SIGKILL a spawned chasekit mid-run, then recover.
// ---------------------------------------------------------------------------

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_chasekit")
}

/// SIGKILL the real binary mid-chase (no failpoints: a genuine
/// out-of-nowhere kill), then `--recover` and continue; the final
/// checkpoint must be bit-identical to an uninterrupted run of the same
/// length.
#[test]
fn sigkill_mid_run_recovers_and_continues_bit_identical() {
    let dir = scratch("sigkill");
    let rules = dir.join("ex1.rules");
    std::fs::write(&rules, "person(bob). person(X) -> hasFather(X, Y), person(Y).\n").unwrap();
    let ckpt = dir.join("k.ckpt");
    let journal = dir.join("k.journal");

    let mut child = std::process::Command::new(bin())
        .args([
            "chase",
            rules.to_str().unwrap(),
            "--steps",
            "100000000",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
            "--checkpoint-every",
            "500",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(300));
    child.kill().unwrap(); // SIGKILL on unix
    child.wait().unwrap();

    // Recover; exit code 3 marks a successful recovery.
    let out = std::process::Command::new(bin())
        .args([
            "chase",
            rules.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
            "--recover",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(3), "recover exit code; stdout: {stdout}");
    let recovered_apps: u64 = stdout
        .lines()
        .find_map(|l| l.strip_prefix("recovered state: "))
        .and_then(|l| l.split(' ').next())
        .and_then(|n| n.parse().ok())
        .expect("recovery report states the application count");

    // Continue past the kill point, then compare against an uninterrupted
    // run of exactly the same total length.
    let total = (recovered_apps + 77).to_string();
    let out = std::process::Command::new(bin())
        .args([
            "chase",
            rules.to_str().unwrap(),
            "--steps",
            &total,
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(10), "continuation hits the application budget");

    let reference_ckpt = dir.join("ref.ckpt");
    let out = std::process::Command::new(bin())
        .args([
            "chase",
            rules.to_str().unwrap(),
            "--steps",
            &total,
            "--checkpoint",
            reference_ckpt.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(10));

    let recovered = std::fs::read_to_string(&ckpt).unwrap();
    let reference = std::fs::read_to_string(&reference_ckpt).unwrap();
    assert_eq!(recovered, reference, "post-recovery state must be bit-identical");
}

/// Deterministic simulated kill in the real binary, at the nastiest spot:
/// between the last journal append and the snapshot rename. The interrupted
/// run must refuse to restart without `--recover`, and the recover → continue
/// relay must be bit-identical to one uninterrupted invocation.
#[test]
fn injected_kill_between_append_and_rename_relays_bit_identical() {
    let dir = scratch("injected-kill");
    let rules = dir.join("ex1.rules");
    std::fs::write(&rules, "person(bob). person(X) -> hasFather(X, Y), person(Y).\n").unwrap();
    let ckpt = dir.join("i.ckpt");
    let journal = dir.join("i.journal");

    // Kill exactly at the first periodic snapshot's rename.
    let out = std::process::Command::new(bin())
        .env(failpoint::ENV_VAR, "snapshot.rename=exit:9@1")
        .args([
            "chase",
            rules.to_str().unwrap(),
            "--steps",
            "90",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
            "--checkpoint-every",
            "40",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(9), "the injected kill fires");
    assert!(!ckpt.exists(), "the rename never happened");

    // Without --recover the binary must refuse, not truncate the journal.
    let out = std::process::Command::new(bin())
        .args([
            "chase",
            rules.to_str().unwrap(),
            "--steps",
            "90",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--recover"),
        "refusal must point at --recover"
    );

    // Recover, continue, compare with one uninterrupted run.
    let out = std::process::Command::new(bin())
        .args([
            "chase",
            rules.to_str().unwrap(),
            "--steps",
            "90",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
            "--recover",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stderr));
    let out = std::process::Command::new(bin())
        .args([
            "chase",
            rules.to_str().unwrap(),
            "--steps",
            "90",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(10));

    let reference_ckpt = dir.join("ref.ckpt");
    let out = std::process::Command::new(bin())
        .args([
            "chase",
            rules.to_str().unwrap(),
            "--steps",
            "90",
            "--checkpoint",
            reference_ckpt.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(10));
    assert_eq!(
        std::fs::read_to_string(&ckpt).unwrap(),
        std::fs::read_to_string(&reference_ckpt).unwrap(),
        "kill-at-rename relay must be bit-identical"
    );
}

/// `CheckpointError` messages from the hardened parser carry line numbers,
/// and trailing garbage after the final section is rejected.
#[test]
fn hardened_checkpoint_parser_reports_locations() {
    let mut program =
        Program::parse("person(bob). person(X) -> hasFather(X, Y), person(Y).").unwrap();
    let initial = seed(&mut program);
    let mut m = ChaseMachine::new(
        &program,
        ChaseConfig::of(ChaseVariant::SemiOblivious),
        initial,
    );
    m.run(&budget(5));
    let text = state_text(&m);

    // Round-trips (the CRC trailer is parsed and re-emitted identically).
    let again = Checkpoint::from_text(&text).unwrap().to_text().unwrap();
    assert_eq!(text, again);

    // Trailing garbage is rejected with its location.
    let garbage = format!("{text}surprise\n");
    let err = Checkpoint::from_text(&garbage).unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("trailing garbage"), "{msg}");
    assert!(msg.contains(&format!("line {}", text.lines().count() + 1)), "{msg}");

    // A malformed mid-file line is reported with its line number.
    let broken = text.replacen("rng ", "rngX ", 1);
    let err = Checkpoint::from_text(&broken).unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("line 6"), "{msg}");

    // A flipped byte anywhere in the body trips the CRC even if the line
    // still parses.
    let flipped = text.replacen("stats ", "stats 9", 1);
    let err = Checkpoint::from_text(&flipped).unwrap_err();
    assert!(matches!(err, CheckpointError::Parse(_)), "{err}");

    // EOF mid-file names the line it expected.
    let truncated: String =
        text.lines().take(4).map(|l| format!("{l}\n")).collect();
    let err = Checkpoint::from_text(&truncated).unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("line 5") && msg.contains("end of file"), "{msg}");
}
