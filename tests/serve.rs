//! Integration suite for `chasekit serve`: the in-process server under
//! concurrent clients, overload, cancellation, caching, streaming, and a
//! hostile wire.
//!
//! The recovery differentials (kill the *server process* and restart it)
//! live in `tests/serve_recovery.rs`; this file drives a server inside the
//! test process over real TCP connections.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use proptest::prelude::*;

use chasekit::engine::serve::{run_job, serve, JobPaths, JobSpec, ServeConfig, ServerHandle};
use chasekit::engine::serve::protocol::{parse_object, Value};
use chasekit::engine::{CancelToken, JsonlSink, StopReason, TraceSink};
use chasekit::prelude::*;

/// A scratch directory unique to this test, cleaned before use.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("chasekit-serve-{}", std::process::id()))
        .join(test);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Example 1's diverging rule: runs for as many applications as the
/// budget allows, so long jobs are easy to make.
const DIVERGING: &str = "person(bob). person(X) -> hasFather(X, Y), person(Y).";
/// A two-atom program the semi-oblivious chase saturates immediately.
const SATURATING: &str = "p(a, b). p(X, Y) -> p(Y, X).";

/// One client connection speaking the newline-delimited protocol.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        assert!(line.ends_with('\n'), "connection closed mid-response: {line:?}");
        line.pop();
        line
    }

    /// Sends one request and reads its single response line.
    fn round_trip(&mut self, line: &str) -> Fields {
        self.send(line);
        Fields::parse(&self.read_line())
    }
}

/// A parsed flat response object with typed accessors.
struct Fields(Vec<(String, Value)>);

impl Fields {
    fn parse(line: &str) -> Fields {
        Fields(parse_object(line).unwrap_or_else(|e| panic!("unparseable response {line:?}: {e}")))
    }

    fn num(&self, key: &str) -> Option<u64> {
        self.0.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
            Value::Num(n) => Some(*n),
            Value::Str(_) => None,
        })
    }

    fn str(&self, key: &str) -> Option<&str> {
        self.0.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
            Value::Str(s) => Some(s.as_str()),
            Value::Num(_) => None,
        })
    }

    fn ok(&self) -> bool {
        self.num("ok") == Some(1)
    }
}

/// Escapes program text into a JSON string literal for request lines.
fn json_str(text: &str) -> String {
    chasekit::core::display::json_string(text)
}

fn start(store: &std::path::Path, f: impl FnOnce(&mut ServeConfig)) -> ServerHandle {
    let mut config = ServeConfig::new(store);
    f(&mut config);
    serve(config).unwrap()
}

/// The server-side default spec used when a test's submits carry only
/// `steps`; mirrors `effective_spec` so solo references line up.
fn spec_with_steps(steps: u64) -> JobSpec {
    JobSpec { steps, ..JobSpec::server_default() }
}

/// Runs the same job solo (no server) and returns its final checkpoint
/// text — the byte-identity witness.
fn solo_checkpoint(dir: &std::path::Path, program: &str, spec: &JobSpec) -> String {
    let program = Program::parse(program).unwrap();
    std::fs::create_dir_all(dir).unwrap();
    run_job(&program, spec, dir, CancelToken::new(), None).unwrap().checkpoint_text
}

// ---------------------------------------------------------------------------
// Core lifecycle: submit → wait → bit-identical to a solo run.
// ---------------------------------------------------------------------------

#[test]
fn submitted_job_completes_bit_identical_to_a_solo_run() {
    let dir = scratch("submit-wait");
    let handle = start(&dir.join("store"), |_| {});
    let mut c = Client::connect(handle.addr());

    let resp = c.round_trip(&format!(
        r#"{{"op":"submit","program":{},"steps":200}}"#,
        json_str(DIVERGING)
    ));
    assert!(resp.ok(), "submit failed");
    let job = resp.str("job").expect("submit returns the job id").to_string();
    assert_eq!(resp.str("state"), Some("queued"));

    let done = c.round_trip(&format!(r#"{{"op":"wait","job":"{job}"}}"#));
    assert!(done.ok());
    assert_eq!(done.str("state"), Some("done"));
    assert_eq!(done.str("outcome"), Some("applications"));
    assert_eq!(done.num("applications"), Some(200));

    // The job's on-disk final checkpoint is bit-identical to a solo run
    // under the same spec.
    let server_ckpt = std::fs::read_to_string(
        JobPaths::new(&dir.join("store").join(&job)).final_checkpoint(),
    )
    .unwrap();
    let want = solo_checkpoint(&dir.join("solo"), DIVERGING, &spec_with_steps(200));
    assert_eq!(server_ckpt, want, "server job diverged from the solo run");

    // Status keeps answering after completion.
    let status = c.round_trip(&format!(r#"{{"op":"status","job":"{job}"}}"#));
    assert_eq!(status.str("state"), Some("done"));

    // Unknown jobs are a structured error, not a hang.
    let missing = c.round_trip(r#"{"op":"status","job":"job-999"}"#);
    assert!(!missing.ok());
    assert_eq!(missing.str("error"), Some("unknown-job"));

    handle.shutdown();
}

#[test]
fn concurrent_clients_all_get_the_deterministic_result() {
    let dir = scratch("concurrent");
    let handle = start(&dir.join("store"), |c| {
        c.workers = 4;
        c.queue_capacity = 32;
    });
    let addr = handle.addr();

    let clients: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                // `fresh` bypasses the cache so all eight actually chase.
                let resp = c.round_trip(&format!(
                    r#"{{"op":"submit","program":{},"steps":150,"fresh":1}}"#,
                    json_str(DIVERGING)
                ));
                assert!(resp.ok(), "submit failed");
                let job = resp.str("job").unwrap().to_string();
                let done = c.round_trip(&format!(r#"{{"op":"wait","job":"{job}"}}"#));
                assert_eq!(done.str("state"), Some("done"), "job {job}");
                (job, done.num("applications"), done.num("atoms"), done.num("nulls"))
            })
        })
        .collect();

    let results: Vec<_> = clients.into_iter().map(|t| t.join().unwrap()).collect();
    let want = solo_checkpoint(&dir.join("solo"), DIVERGING, &spec_with_steps(150));
    for (job, applications, atoms, nulls) in &results {
        assert_eq!(*applications, Some(150), "{job}");
        assert_eq!((*atoms, *nulls), (results[0].2, results[0].3), "{job}");
        let ckpt = std::fs::read_to_string(
            JobPaths::new(&dir.join("store").join(job)).final_checkpoint(),
        )
        .unwrap();
        assert_eq!(ckpt, want, "{job} diverged under concurrency");
    }
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Admission control and cancellation.
// ---------------------------------------------------------------------------

#[test]
fn overload_rejects_structurally_and_loses_no_admitted_job() {
    let dir = scratch("overload");
    let handle = start(&dir.join("store"), |c| {
        c.workers = 1;
        c.queue_capacity = 2;
    });
    let mut c = Client::connect(handle.addr());

    // Fill the admission window with effectively-endless jobs.
    let submit = format!(
        r#"{{"op":"submit","program":{},"steps":4000000000,"fresh":1}}"#,
        json_str(DIVERGING)
    );
    let first = c.round_trip(&submit);
    assert!(first.ok());
    let second = c.round_trip(&submit);
    assert!(second.ok());
    let jobs = [first.str("job").unwrap().to_string(), second.str("job").unwrap().to_string()];

    // The window is full: the third submission is rejected with the
    // structured overload response, and nothing panics or hangs.
    let rejected = c.round_trip(&submit);
    assert!(!rejected.ok());
    assert_eq!(rejected.str("error"), Some("overloaded"));
    assert_eq!(rejected.num("active"), Some(2));
    assert_eq!(rejected.num("capacity"), Some(2));

    let stats = c.round_trip(r#"{"op":"stats"}"#);
    assert_eq!(stats.num("rejected"), Some(1));
    assert_eq!(stats.num("submitted"), Some(2));

    // Cancelling drains the window; both admitted jobs reach a terminal
    // state (cancelled is terminal and persisted, not lost).
    for job in &jobs {
        let resp = c.round_trip(&format!(r#"{{"op":"cancel","job":"{job}"}}"#));
        assert!(resp.ok(), "{job}");
        let done = c.round_trip(&format!(r#"{{"op":"wait","job":"{job}"}}"#));
        assert_eq!(done.str("state"), Some("done"), "{job}");
        assert_eq!(done.str("outcome"), Some("cancelled"), "{job}");
    }

    // The freed capacity admits again: the server kept serving throughout.
    let after = c.round_trip(&format!(
        r#"{{"op":"submit","program":{},"steps":50,"fresh":1}}"#,
        json_str(DIVERGING)
    ));
    assert!(after.ok(), "admission must recover after cancellations");
    let job = after.str("job").unwrap().to_string();
    let done = c.round_trip(&format!(r#"{{"op":"wait","job":"{job}"}}"#));
    assert_eq!(done.str("outcome"), Some("applications"));
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Result cache.
// ---------------------------------------------------------------------------

#[test]
fn saturated_results_are_cached_by_fingerprint() {
    let dir = scratch("cache");
    let handle = start(&dir.join("store"), |_| {});
    let mut c = Client::connect(handle.addr());

    let submit = format!(r#"{{"op":"submit","program":{},"steps":500}}"#, json_str(SATURATING));
    let first = c.round_trip(&submit);
    assert!(first.ok());
    let job = first.str("job").unwrap().to_string();
    let done = c.round_trip(&format!(r#"{{"op":"wait","job":"{job}"}}"#));
    assert_eq!(done.str("outcome"), Some("saturated"));

    // The identical program under the same variant answers from the cache:
    // no job id, the terminal result inline.
    let cached = c.round_trip(&submit);
    assert!(cached.ok());
    assert_eq!(cached.num("cached"), Some(1));
    assert_eq!(cached.str("outcome"), Some("saturated"));
    assert_eq!(cached.num("applications"), done.num("applications"));
    assert!(cached.str("job").is_none(), "cache hits run no job");

    // `fresh` bypasses the cache and actually runs.
    let fresh = c.round_trip(&format!(
        r#"{{"op":"submit","program":{},"steps":500,"fresh":1}}"#,
        json_str(SATURATING)
    ));
    assert!(fresh.ok());
    assert!(fresh.str("job").is_some());
    let job = fresh.str("job").unwrap().to_string();
    c.round_trip(&format!(r#"{{"op":"wait","job":"{job}"}}"#));

    // A different variant is a different cache key.
    let other = c.round_trip(&format!(
        r#"{{"op":"submit","program":{},"variant":"o","steps":500}}"#,
        json_str(SATURATING)
    ));
    assert!(other.ok());
    assert!(other.str("job").is_some(), "different variant must not hit the cache");
    let job = other.str("job").unwrap().to_string();
    c.round_trip(&format!(r#"{{"op":"wait","job":"{job}"}}"#));

    let stats = c.round_trip(r#"{"op":"stats"}"#);
    assert_eq!(stats.num("cache_hits"), Some(1));
    handle.shutdown();
}

#[test]
fn cached_results_do_not_answer_deadline_bounded_submissions() {
    let dir = scratch("cache-timeout");
    let handle = start(&dir.join("store"), |_| {});
    let mut c = Client::connect(handle.addr());

    let submit = format!(r#"{{"op":"submit","program":{},"steps":500}}"#, json_str(SATURATING));
    let first = c.round_trip(&submit);
    assert!(first.ok());
    let job = first.str("job").unwrap().to_string();
    let done = c.round_trip(&format!(r#"{{"op":"wait","job":"{job}"}}"#));
    assert_eq!(done.str("outcome"), Some("saturated"));

    // The cache is warm, but a deadline-bounded submission must run for
    // real: a cached `saturated` cannot prove a live run would have beaten
    // the clock, and identical requests must not flip outcome on warmth.
    let bounded = c.round_trip(&format!(
        r#"{{"op":"submit","program":{},"steps":500,"timeout_ms":60000}}"#,
        json_str(SATURATING)
    ));
    assert!(bounded.ok());
    assert!(bounded.num("cached").is_none(), "deadline-bounded submit must bypass the cache");
    let job = bounded.str("job").expect("deadline-bounded submit runs a job").to_string();
    let done = c.round_trip(&format!(r#"{{"op":"wait","job":"{job}"}}"#));
    assert_eq!(done.str("outcome"), Some("saturated"));

    // Without a deadline the resubmission still hits the cache.
    let cached = c.round_trip(&submit);
    assert_eq!(cached.num("cached"), Some(1));
    let stats = c.round_trip(r#"{"op":"stats"}"#);
    assert_eq!(stats.num("cache_hits"), Some(1));
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Bounded in-memory state: terminal retention and the connection cap.
// ---------------------------------------------------------------------------

#[test]
fn evicted_terminal_jobs_still_answer_from_the_store() {
    let dir = scratch("eviction");
    let handle = start(&dir.join("store"), |c| {
        c.workers = 1;
        c.terminal_retention = 1;
    });
    let mut c = Client::connect(handle.addr());

    let submit = format!(
        r#"{{"op":"submit","program":{},"steps":40,"fresh":1}}"#,
        json_str(DIVERGING)
    );
    let first = c.round_trip(&submit);
    assert!(first.ok());
    let job_a = first.str("job").unwrap().to_string();
    let done = c.round_trip(&format!(r#"{{"op":"wait","job":"{job_a}"}}"#));
    assert_eq!(done.str("state"), Some("done"));
    let second = c.round_trip(&submit);
    assert!(second.ok());
    let job_b = second.str("job").unwrap().to_string();
    let done = c.round_trip(&format!(r#"{{"op":"wait","job":"{job_b}"}}"#));
    assert_eq!(done.str("state"), Some("done"));

    // With retention 1, observing job B terminal implies job A was evicted
    // from memory (same critical section) — yet status and wait still
    // answer from its on-disk result marker, indistinguishably.
    let status = c.round_trip(&format!(r#"{{"op":"status","job":"{job_a}"}}"#));
    assert!(status.ok(), "evicted completed job must still answer: {:?}", status.str("error"));
    assert_eq!(status.str("state"), Some("done"));
    assert_eq!(status.str("outcome"), Some("applications"));
    assert_eq!(status.num("applications"), Some(40));
    let wait = c.round_trip(&format!(r#"{{"op":"wait","job":"{job_a}"}}"#));
    assert_eq!(wait.str("state"), Some("done"));

    // Ids that never existed stay unknown, and hostile ids never reach
    // the filesystem.
    for id in ["job-999", "../outside", "job-", "job-1x", ""] {
        let missing = c.round_trip(&format!(r#"{{"op":"status","job":{}}}"#, json_str(id)));
        assert!(!missing.ok(), "{id:?}");
        assert_eq!(missing.str("error"), Some("unknown-job"), "{id:?}");
    }
    handle.shutdown();
}

#[test]
fn connection_cap_rejects_structurally_and_frees_slots() {
    let dir = scratch("conn-cap");
    let handle = start(&dir.join("store"), |c| c.max_connections = 2);

    let mut c1 = Client::connect(handle.addr());
    let mut c2 = Client::connect(handle.addr());
    assert!(c1.round_trip(r#"{"op":"stats"}"#).ok());
    assert!(c2.round_trip(r#"{"op":"stats"}"#).ok());

    // The third connection gets a structured rejection and is closed —
    // no handler thread is spawned for it.
    let mut c3 = Client::connect(handle.addr());
    let resp = Fields::parse(&c3.read_line());
    assert!(!resp.ok());
    assert_eq!(resp.str("error"), Some("too-many-connections"));
    let mut rest = String::new();
    assert_eq!(c3.reader.read_line(&mut rest).unwrap(), 0, "rejected connection is closed");

    // A disconnecting client frees its slot (when its handler notices the
    // EOF), and the server admits connections again.
    drop(c1);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        // A rejected connection may be closed before our request is even
        // sent, so both the write and the read are fallible probes here.
        let mut c = Client::connect(handle.addr());
        let _ = c.stream.write_all(b"{\"op\":\"stats\"}\n");
        let mut line = String::new();
        let served = match c.reader.read_line(&mut line) {
            Ok(n) if n > 0 => {
                let resp = Fields::parse(line.trim_end());
                if !resp.ok() {
                    assert_eq!(resp.str("error"), Some("too-many-connections"));
                }
                resp.ok()
            }
            _ => false,
        };
        if served {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "slot never freed after disconnect");
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown();
}

#[test]
fn shutdown_interrupted_jobs_report_interrupted_not_failed() {
    let dir = scratch("interrupted");
    let handle = start(&dir.join("store"), |c| c.workers = 1);
    let mut c = Client::connect(handle.addr());

    // An effectively-endless job, then wait until the worker picked it up.
    let resp = c.round_trip(&format!(
        r#"{{"op":"submit","program":{},"steps":4000000000,"fresh":1}}"#,
        json_str(DIVERGING)
    ));
    assert!(resp.ok());
    let job = resp.str("job").unwrap().to_string();
    loop {
        let s = c.round_trip(&format!(r#"{{"op":"status","job":"{job}"}}"#));
        if s.str("state") == Some("running") {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // Shutdown cancels the job cooperatively; the worker pool drains
    // before `shutdown` returns. Existing connections keep answering.
    handle.shutdown();
    let s = c.round_trip(&format!(r#"{{"op":"status","job":"{job}"}}"#));
    assert!(s.ok());
    assert_eq!(
        s.str("state"),
        Some("interrupted"),
        "a shutdown-interrupted job is in flight, not failed: {:?}",
        s.str("detail")
    );
    // And on disk it really is still in flight: no result marker, so the
    // next start's scan recovers it.
    assert!(!dir.join("store").join(&job).join("result").exists());
}

#[test]
fn update_derives_a_new_job_from_a_stored_program() {
    let dir = scratch("update-op");
    let handle = start(&dir.join("store"), |_| {});
    let mut c = Client::connect(handle.addr());

    let resp = c.round_trip(&format!(
        r#"{{"op":"submit","program":{},"fresh":1}}"#,
        json_str(SATURATING)
    ));
    assert!(resp.ok());
    let base = resp.str("job").unwrap().to_string();
    let done = c.round_trip(&format!(r#"{{"op":"wait","job":"{base}"}}"#));
    assert_eq!(done.str("state"), Some("done"));
    assert_eq!(done.str("outcome"), Some("saturated"));

    // Derive a new job: swap the base fact. The server re-chases the
    // edited program from scratch under a fresh id.
    let script = "retract p(a, b).\nadd p(c, d).";
    let resp = c.round_trip(&format!(
        r#"{{"op":"update","job":"{base}","script":{}}}"#,
        json_str(script)
    ));
    assert!(resp.ok(), "{:?}", resp.str("detail"));
    let derived = resp.str("job").unwrap().to_string();
    assert_ne!(derived, base);
    let done = c.round_trip(&format!(r#"{{"op":"wait","job":"{derived}"}}"#));
    assert_eq!(done.str("state"), Some("done"));
    assert_eq!(done.str("outcome"), Some("saturated"));
    assert_eq!(done.num("atoms"), Some(2));

    // The derived job's final checkpoint is bit-identical to a solo run
    // of the edited program — the canonical from-scratch rebuild.
    let mut program = Program::parse(SATURATING).unwrap();
    let edits = chasekit::engine::parse_edit_script(script, &mut program).unwrap();
    let edited = chasekit::engine::edited_program(&program, &edits);
    let edited_text = chasekit::core::display::program_to_string(&edited);
    let want = solo_checkpoint(&dir.join("solo"), &edited_text, &JobSpec::server_default());
    let got = std::fs::read_to_string(
        dir.join("store").join(&derived).join("final.ckpt"),
    )
    .unwrap();
    assert_eq!(got, want, "derived job diverged from the solo rebuild");

    // Structured failure shapes: unknown job, hostile id, bad script.
    for id in ["job-999", "../outside"] {
        let resp = c.round_trip(&format!(
            r#"{{"op":"update","job":{},"script":"add p(a, b)."}}"#,
            json_str(id)
        ));
        assert!(!resp.ok(), "{id:?}");
        assert_eq!(resp.str("error"), Some("unknown-job"), "{id:?}");
    }
    let resp = c.round_trip(&format!(
        r#"{{"op":"update","job":"{base}","script":"frobnicate p(a, b)."}}"#
    ));
    assert!(!resp.ok());
    assert_eq!(resp.str("error"), Some("edit-script"));
    handle.shutdown();
}

#[test]
fn recovery_still_works_after_store_compaction() {
    let dir = scratch("compaction");
    let store = dir.join("store");
    let handle = start(&store, |c| {
        c.workers = 1;
        c.keep_completed = Some(1);
    });
    let mut c = Client::connect(handle.addr());

    // Two quick jobs; once both are done, compaction has reclaimed the
    // older directory and persisted the sequence floor.
    let mut finished = Vec::new();
    for program in [SATURATING, "q(a). q(X) -> r(X)."] {
        let resp = c.round_trip(&format!(
            r#"{{"op":"submit","program":{},"fresh":1}}"#,
            json_str(program)
        ));
        assert!(resp.ok());
        let job = resp.str("job").unwrap().to_string();
        let done = c.round_trip(&format!(r#"{{"op":"wait","job":"{job}"}}"#));
        assert_eq!(done.str("state"), Some("done"));
        finished.push(job);
    }
    assert!(!store.join(&finished[0]).exists(), "oldest completed dir is reclaimed");
    assert!(store.join(&finished[1]).exists());
    assert!(store.join("next-seq").exists(), "sequence floor is persisted");

    // A long job interrupted by shutdown stays in flight on disk —
    // compaction must never have touched it.
    let resp = c.round_trip(&format!(
        r#"{{"op":"submit","program":{},"steps":4000000000,"fresh":1}}"#,
        json_str(DIVERGING)
    ));
    assert!(resp.ok());
    let in_flight = resp.str("job").unwrap().to_string();
    loop {
        let s = c.round_trip(&format!(r#"{{"op":"status","job":"{in_flight}"}}"#));
        if s.str("state") == Some("running") {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.shutdown();

    // Restart on the compacted store: the in-flight job recovers under
    // its original id.
    let handle = start(&store, |c| {
        c.workers = 1;
        c.keep_completed = Some(1);
    });
    assert_eq!(handle.recovered_jobs().to_vec(), vec![in_flight.clone()]);
    let mut c = Client::connect(handle.addr());
    loop {
        let s = c.round_trip(&format!(r#"{{"op":"status","job":"{in_flight}"}}"#));
        if s.str("state") == Some("running") {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let resp = c.round_trip(&format!(r#"{{"op":"cancel","job":"{in_flight}"}}"#));
    assert!(resp.ok());
    let done = c.round_trip(&format!(r#"{{"op":"wait","job":"{in_flight}"}}"#));
    assert_eq!(done.str("state"), Some("done"));
    assert_eq!(done.str("outcome"), Some("cancelled"));

    // New admissions continue past the floor: a compacted-away job's id
    // is never handed to a new submission.
    let resp = c.round_trip(&format!(
        r#"{{"op":"submit","program":{},"steps":5,"fresh":1}}"#,
        json_str(DIVERGING)
    ));
    assert!(resp.ok());
    assert_eq!(resp.str("job"), Some("job-3"));
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Trace streaming.
// ---------------------------------------------------------------------------

/// A `Write` target readable after the owning sink is dropped.
#[derive(Clone)]
struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn streamed_trace_is_byte_identical_to_a_solo_traced_run() {
    let dir = scratch("stream");
    let handle = start(&dir.join("store"), |_| {});
    let mut c = Client::connect(handle.addr());

    let resp = c.round_trip(&format!(
        r#"{{"op":"submit","program":{},"steps":60,"stream":1,"fresh":1}}"#,
        json_str(DIVERGING)
    ));
    assert!(resp.ok());
    assert_eq!(resp.str("state"), Some("queued"));

    // Event lines follow until the terminal response (the line with `ok`).
    let mut events = Vec::new();
    let done = loop {
        let line = c.read_line();
        let fields = Fields::parse(&line);
        if fields.num("ok").is_some() {
            break fields;
        }
        events.push(line);
    };
    assert_eq!(done.str("state"), Some("done"));
    assert_eq!(done.num("applications"), Some(60));
    assert!(!events.is_empty(), "a 60-application chase traces events");

    // Solo reference: the same job traced through a JsonlSink directly.
    let buf = SharedBuf(Default::default());
    let program = Program::parse(DIVERGING).unwrap();
    let sink: Box<dyn TraceSink> = Box::new(JsonlSink::new(buf.clone(), &program));
    let solo_dir = dir.join("solo");
    std::fs::create_dir_all(&solo_dir).unwrap();
    let report =
        run_job(&program, &spec_with_steps(60), &solo_dir, CancelToken::new(), Some(sink))
            .unwrap();
    assert_eq!(report.outcome, StopReason::Applications);
    let want = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let want_lines: Vec<&str> = want.lines().collect();
    assert_eq!(events, want_lines, "streamed trace diverged from the solo trace");
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// The hostile wire: the protocol trust boundary under malformed input.
// ---------------------------------------------------------------------------

#[test]
fn malformed_lines_get_structured_errors_and_the_connection_survives() {
    let dir = scratch("malformed");
    let handle = start(&dir.join("store"), |c| c.max_line_bytes = 512);
    let mut c = Client::connect(handle.addr());

    for (line, code) in [
        ("not json at all", "bad-request"),
        (r#"{"op":"submit"}"#, "bad-request"),                    // missing program
        (r#"{"op":"submit","program":7}"#, "bad-request"),        // mistyped field
        (r#"{"op":"submit","program":"p(a).","x":1}"#, "bad-request"), // extra field
        (r#"{"op":"nope"}"#, "bad-request"),                      // unknown op
        (r#"{"op":"submit","program":{}}"#, "bad-request"),       // nested value
        (r#"{"op":"submit","program":"p(a"}"#, "parse"),          // program won't parse
        (&format!(r#"{{"op":"submit","program":"{}"}}"#, "x".repeat(600)), "oversized"),
    ] {
        let resp = c.round_trip(line);
        assert!(!resp.ok(), "{line:?}");
        assert_eq!(resp.str("error"), Some(code), "{line:?}");
    }

    // Non-UTF-8 bytes.
    c.stream.write_all(b"\xff\xfe{\"op\":\"stats\"}\n").unwrap();
    let resp = Fields::parse(&c.read_line());
    assert_eq!(resp.str("error"), Some("non-utf8"));

    // After all that abuse the same connection still serves real requests.
    let stats = c.round_trip(r#"{"op":"stats"}"#);
    assert!(stats.ok());
    assert_eq!(stats.num("submitted"), Some(0));

    // A connection torn mid-line is reported (best effort) and closed;
    // fresh connections are unaffected.
    let mut torn = Client::connect(handle.addr());
    torn.stream.write_all(b"{\"op\":\"sta").unwrap();
    torn.stream.shutdown(std::net::Shutdown::Write).unwrap();
    let resp = Fields::parse(&torn.read_line());
    assert_eq!(resp.str("error"), Some("truncated"));

    let mut again = Client::connect(handle.addr());
    assert!(again.round_trip(r#"{"op":"stats"}"#).ok());
    handle.shutdown();
}

/// One long-lived server shared by every proptest case (starting a server
/// per case would dominate the run); access is serialized per connection.
fn fuzz_server_addr() -> SocketAddr {
    use std::sync::OnceLock;
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let dir = scratch("fuzz-server");
        let handle = start(&dir, |c| c.max_line_bytes = 1024);
        let addr = handle.addr();
        // Leak the handle: the server lives for the whole test process.
        std::mem::forget(handle);
        addr
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes thrown at the socket: every complete line gets a
    /// parseable one-line response, the server never dies, and the
    /// connection still answers a well-formed request afterwards.
    #[test]
    fn arbitrary_bytes_never_kill_the_connection(
        payload in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let payload: Vec<u8> = payload.into_iter().filter(|&b| b != b'\n').collect();
        // Blank lines are skipped by the server with no response at all;
        // everything else gets exactly one response line.
        let blank = std::str::from_utf8(&payload).is_ok_and(|s| s.trim().is_empty());
        let mut line = payload;
        line.push(b'\n');
        let mut c = Client::connect(fuzz_server_addr());
        c.stream.write_all(&line).unwrap();
        if !blank {
            let resp = Fields::parse(&c.read_line());
            // Random bytes are not a valid submit/wait/cancel, so the
            // response is a structured error (ok:0) with an error code.
            prop_assert!(!resp.ok());
            prop_assert!(resp.str("error").is_some());
        }
        // The connection keeps serving.
        let stats = c.round_trip(r#"{"op":"stats"}"#);
        prop_assert!(stats.ok());
    }

    /// Structurally hostile *JSON*: near-miss objects built from schema
    /// fragments. Every one is rejected with a structured error naming a
    /// code, never a panic or a dropped connection.
    #[test]
    fn schema_violations_are_rejected_structurally(
        op in prop_oneof![
            Just("submit"), Just("status"), Just("wait"), Just("cancel"),
            Just("stats"), Just("shutdown2"), Just(""),
        ],
        extra_key_idx in 0usize..8,
        extra_num in 0u64..3,
        nest in any::<bool>(),
    ) {
        // `shutdown` itself is excluded: it would stop the shared server.
        // The extra key is drawn from real schema field names (plus `op`
        // itself and a stranger) so duplicate-key, mistyped-field, and
        // unknown-field rejections all get exercised.
        let extra_key =
            ["op", "job", "program", "variant", "steps", "stream", "fresh", "zzz"][extra_key_idx];
        let value = if nest { "{}".to_string() } else { extra_num.to_string() };
        let line = format!(r#"{{"op":"{op}","{extra_key}":{value}}}"#);
        let mut c = Client::connect(fuzz_server_addr());
        let resp = c.round_trip(&line);
        // `status`/`wait`/`cancel` with extra_key == "job" would be valid
        // requests for a missing job: unknown-job is the correct outcome.
        prop_assert!(!resp.ok(), "{line}");
        prop_assert!(resp.str("error").is_some(), "{line}");
        let stats = c.round_trip(r#"{"op":"stats"}"#);
        prop_assert!(stats.ok());
    }

    /// Oversized lines (beyond the configured 1024-byte cap) are consumed
    /// and rejected without desynchronizing the stream.
    #[test]
    fn oversized_lines_do_not_desynchronize(pad in 1025usize..4096) {
        let mut c = Client::connect(fuzz_server_addr());
        let mut line = vec![b'z'; pad];
        line.push(b'\n');
        c.stream.write_all(&line).unwrap();
        let resp = Fields::parse(&c.read_line());
        prop_assert_eq!(resp.str("error"), Some("oversized"));
        let stats = c.round_trip(r#"{"op":"stats"}"#);
        prop_assert!(stats.ok());
    }
}
