//! Crash/recovery differentials for the real `chasekit serve` process.
//!
//! The headline guarantee: **kill the server process at any injected
//! server-side fault point — or with a genuine SIGKILL — restart it on the
//! same store, and every admitted job completes with a final checkpoint
//! bit-identical to an uninterrupted solo CLI run.** The in-process
//! behavioural suite lives in `tests/serve.rs`; everything here spawns the
//! actual binary and real processes die.
//!
//! Each spawned server is armed through `CHASEKIT_FAILPOINTS`, so no
//! in-process failpoint lock is needed; tests still run fine with
//! `RUST_TEST_THREADS=1` (the CI `serve-recovery` job does, mirroring
//! `crash-recovery`).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_chasekit")
}

/// A scratch directory unique to this test, cleaned before use.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("chasekit-serve-recovery-{}", std::process::id()))
        .join(test);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const DIVERGING: &str = "person(bob). person(X) -> hasFather(X, Y), person(Y).\n";

/// A spawned `chasekit serve` process plus its startup banner.
struct Server {
    child: Child,
    stdout: BufReader<std::process::ChildStdout>,
    addr: String,
}

impl Server {
    /// Spawns `chasekit serve --store <store> --checkpoint-every 25`,
    /// optionally armed with a failpoint spec, and reads the (explicitly
    /// flushed) `listening on ADDR` banner.
    fn spawn(store: &Path, failpoints: Option<&str>) -> Server {
        let mut cmd = Command::new(bin());
        cmd.args(["serve", "--store", store.to_str().unwrap(), "--checkpoint-every", "25"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        match failpoints {
            Some(spec) => cmd.env("CHASEKIT_FAILPOINTS", spec),
            None => cmd.env_remove("CHASEKIT_FAILPOINTS"),
        };
        let mut child = cmd.spawn().unwrap();
        let mut stdout = BufReader::new(child.stdout.take().unwrap());
        let mut banner = String::new();
        stdout.read_line(&mut banner).unwrap();
        let addr = banner
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
            .trim()
            .to_string();
        Server { child, stdout, addr }
    }

    /// Reads the next `recovered <job>` banner line.
    fn read_recovered(&mut self) -> String {
        let mut line = String::new();
        self.stdout.read_line(&mut line).unwrap();
        line.strip_prefix("recovered ")
            .unwrap_or_else(|| panic!("expected a recovered banner, got {line:?}"))
            .trim()
            .to_string()
    }

    fn connect(&self) -> Conn {
        let stream = TcpStream::connect(&self.addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Conn { stream, reader }
    }

    /// Waits for the process to exit on its own (an injected kill),
    /// panicking if it outlives the deadline.
    fn wait_for_death(&mut self, deadline: Duration) -> i32 {
        let start = Instant::now();
        loop {
            if let Some(status) = self.child.try_wait().unwrap() {
                return status.code().unwrap_or(-1);
            }
            assert!(start.elapsed() < deadline, "server outlived the injected kill");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Politely shuts the server down via the protocol and reaps it.
    fn shutdown(mut self) {
        let mut c = self.connect();
        let _ = c.send(r#"{"op":"shutdown"}"#);
        let _ = c.read_line();
        let status = self.child.wait().unwrap();
        assert!(status.success(), "shutdown exit: {status:?}");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Never leak a server process past a failed assertion.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One client connection; reads are fallible because half these tests
/// kill the server while the client is blocked on it.
struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn send(&mut self, line: &str) -> std::io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")
    }

    /// Reads one response line; `None` when the server died on us.
    fn read_line(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(n) if n > 0 && line.ends_with('\n') => {
                line.pop();
                Some(line)
            }
            _ => None,
        }
    }
}

/// Extracts `"key":"value"` from a flat JSON response line.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

fn field_num(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    line[start..].split(|c: char| !c.is_ascii_digit()).next()?.parse().ok()
}

/// Submits the diverging program for `steps` applications (cache
/// bypassed) and returns the acknowledged job id, or `None` if the server
/// died before acknowledging.
fn submit(c: &mut Conn, steps: u64) -> Option<String> {
    let program = DIVERGING.trim_end().replace('\n', "\\n");
    c.send(&format!(r#"{{"op":"submit","program":"{program}","steps":{steps},"fresh":1}}"#))
        .ok()?;
    let resp = c.read_line()?;
    field(&resp, "job").map(str::to_string)
}

/// The uninterrupted reference: a solo CLI `chase` run of the same
/// program and budget, returning its checkpoint bytes.
fn solo_reference(dir: &Path, steps: u64) -> String {
    let rules = dir.join("ref.rules");
    std::fs::write(&rules, DIVERGING).unwrap();
    let ckpt = dir.join("ref.ckpt");
    let out = Command::new(bin())
        .env_remove("CHASEKIT_FAILPOINTS")
        .args([
            "chase",
            rules.to_str().unwrap(),
            "--steps",
            &steps.to_string(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(10), "reference run hits the application budget");
    std::fs::read_to_string(&ckpt).unwrap()
}

/// Waits for `job` to complete on a restarted server and asserts its
/// final checkpoint is bit-identical to the solo reference.
fn finish_and_compare(server: &Server, store: &Path, job: &str, steps: u64, want: &str) {
    let mut c = server.connect();
    c.send(&format!(r#"{{"op":"wait","job":"{job}"}}"#)).unwrap();
    let done = c.read_line().expect("restarted server answers the wait");
    assert_eq!(field(&done, "state"), Some("done"), "{job}: {done}");
    assert_eq!(field(&done, "outcome"), Some("applications"), "{job}: {done}");
    assert_eq!(field_num(&done, "applications"), Some(steps), "{job}: {done}");
    let got = std::fs::read_to_string(store.join(job).join("final.ckpt")).unwrap();
    assert_eq!(got, want, "{job}: recovered final checkpoint diverged from the solo run");
}

// ---------------------------------------------------------------------------
// Kill at every server-side failpoint, restart, compare.
// ---------------------------------------------------------------------------

/// Injected-kill plans covering every server-side crash window: the admit
/// window (job durable, client un-acked), the journal and snapshot sites
/// inside the job's durable loop (hits 2+ where hit 1 is the admission
/// `meta` write, which shares the atomic-publication code path), and the
/// result window (final checkpoint written, result marker not).
const KILL_PLANS: &[&str] = &[
    "serve.admit=exit:9",
    "journal.append=exit:9@40",
    "journal.sync=exit:9@1",
    "snapshot.write=exit:9@2",
    "snapshot.rename=exit:9@2",
    "serve.result=exit:9",
];

#[test]
fn kill_at_every_server_failpoint_recovers_bit_identical() {
    const STEPS: u64 = 120;
    let dir = scratch("failpoint-kills");
    let want = solo_reference(&dir, STEPS);

    for plan in KILL_PLANS {
        let store = dir.join(plan.replace(['=', ':', '@', '.'], "-"));
        let mut server = Server::spawn(&store, Some(plan));
        let mut c = server.connect();

        // The submission drives the server into the armed fault. For the
        // admit-window plan the ack never arrives; for the others the job
        // is acknowledged and dies mid-run while we wait on it.
        match submit(&mut c, STEPS) {
            None => {}
            Some(job) => {
                let _ = c.send(&format!(r#"{{"op":"wait","job":"{job}"}}"#));
                let _ = c.read_line(); // EOF when the kill lands
            }
        }
        let code = server.wait_for_death(Duration::from_secs(30));
        assert_eq!(code, 9, "`{plan}` must kill the server");
        drop(server);

        // Restart on the same store: the scan must hand the admitted job
        // back to the pool, announce it, and complete it identically.
        let mut server = Server::spawn(&store, None);
        let job = server.read_recovered();
        finish_and_compare(&server, &store, &job, STEPS, &want);
        server.shutdown();
    }
}

/// The double-kill window: the first kill lands mid-leg, so the journal
/// holds records past the last published snapshot. Recovery replays them
/// and re-bases the journal at the recovered application count — and the
/// second kill lands right after that re-base, *before* the next leg
/// publish. If recovery re-based without first republishing the recovered
/// snapshot, the disk would now say snapshot(N) + journal(base M > N),
/// which `recover()` rejects as inconsistent: the job would fail on every
/// restart forever. The third start proves the window is consistent.
#[test]
fn kill_again_right_after_recovery_rebase_still_recovers() {
    const STEPS: u64 = 120;
    let dir = scratch("double-kill");
    let want = solo_reference(&dir, STEPS);
    let store = dir.join("store");

    // Kill 1: append 40 with --checkpoint-every 25 is mid-leg 2, so the
    // journal is strictly ahead of the published snapshot (25 apps).
    let mut server = Server::spawn(&store, Some("journal.append=exit:9@40"));
    let mut c = server.connect();
    let job = submit(&mut c, STEPS).expect("the submission is acknowledged before the kill");
    let _ = c.send(&format!(r#"{{"op":"wait","job":"{job}"}}"#));
    let _ = c.read_line();
    assert_eq!(server.wait_for_death(Duration::from_secs(30)), 9);
    drop(server);

    // Kill 2: the restarted server recovers the job and dies on the very
    // first journal append — after the recovery re-base, before any leg
    // publish.
    let mut server = Server::spawn(&store, Some("journal.append=exit:9@1"));
    assert_eq!(server.read_recovered(), job);
    assert_eq!(server.wait_for_death(Duration::from_secs(30)), 9);
    drop(server);

    // Third start: the twice-killed job still recovers, completes, and is
    // bit-identical to the uninterrupted solo run.
    let mut server = Server::spawn(&store, None);
    assert_eq!(server.read_recovered(), job);
    finish_and_compare(&server, &store, &job, STEPS, &want);
    server.shutdown();
}

/// A kill *before* the `meta` marker lands (the very first atomic write of
/// admission) leaves an unadmitted directory: the client was never acked,
/// so the restart scan must discard it — and must not replay it as a job.
#[test]
fn kill_before_admission_marker_discards_the_directory() {
    let dir = scratch("pre-admission-kill");
    let store = dir.join("store");
    let mut server = Server::spawn(&store, Some("snapshot.write=exit:9@1"));
    let mut c = server.connect();
    assert_eq!(submit(&mut c, 50), None, "the kill lands before the ack");
    assert_eq!(server.wait_for_death(Duration::from_secs(30)), 9);
    drop(server);

    let server = Server::spawn(&store, None);
    // No recovered banner: the directory was never admitted. The next
    // submission works and does not collide with the discarded sequence
    // number.
    let mut c = server.connect();
    let job = submit(&mut c, 50).expect("a fresh server admits");
    c.send(&format!(r#"{{"op":"wait","job":"{job}"}}"#)).unwrap();
    let done = c.read_line().unwrap();
    assert_eq!(field(&done, "state"), Some("done"), "{done}");
    server.shutdown();
}

// ---------------------------------------------------------------------------
// The real thing: SIGKILL mid-job, restart, compare.
// ---------------------------------------------------------------------------

#[test]
fn sigkill_mid_job_recovers_bit_identical_on_restart() {
    const STEPS: u64 = 8_000;
    let dir = scratch("sigkill");
    let store = dir.join("store");

    let mut server = Server::spawn(&store, None);
    let mut c = server.connect();
    let job = submit(&mut c, STEPS).expect("submission is acknowledged");

    // Let the job get properly mid-flight (several snapshot legs in),
    // then kill the whole server process without ceremony.
    std::thread::sleep(Duration::from_millis(350));
    server.child.kill().unwrap();
    server.child.wait().unwrap();
    drop(server);

    // The store must hold an in-flight job: meta, some durable state, no
    // result marker.
    assert!(store.join(&job).join("meta").exists(), "admitted job survived on disk");
    assert!(
        !store.join(&job).join("result").exists(),
        "a SIGKILL mid-run cannot have published a result"
    );

    let want = solo_reference(&dir, STEPS);
    let mut server = Server::spawn(&store, None);
    let recovered = server.read_recovered();
    assert_eq!(recovered, job, "the killed job is the one recovered");
    finish_and_compare(&server, &store, &job, STEPS, &want);

    // And the result marker now exists: the job is complete, not lost.
    assert!(store.join(&job).join("result").exists());
    server.shutdown();
}
