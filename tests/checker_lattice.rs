//! The checker soundness lattice: every implication between the
//! termination conditions that the theory promises, asserted over the
//! ontology-shaped generator families and a proptest population of mixed
//! random programs.
//!
//! The lattice (E6 measures the strictness; this suite enforces the
//! containments as hard invariants):
//!
//! * `RA ⊆ WA ⊆ JA ⊆ MFA` — each sufficient condition is subsumed by the
//!   next (a JA-accepted set can at worst leave MFA `Unknown` under fuel,
//!   never `NotMfa`);
//! * on linear inputs the *critical* variants are complete: `WA ⇒`
//!   critical-WA and `RA ⇒` critical-RA (the exact shape-graph procedure
//!   accepts whatever the syntactic condition accepts);
//! * `aGRD ⇒` termination under **every** chase variant — no exact or
//!   semi-decision procedure may claim divergence on an aGRD set;
//! * on guarded inputs the portfolio dispatcher and the guarded pumping
//!   procedure are the same procedure — their verdicts must agree whenever
//!   both commit;
//! * and nothing any checker claims may contradict what the chase engine
//!   actually does on the critical instance (bounded, with a generous
//!   budget — see `chasekit::bench::truth`).

use proptest::prelude::*;

use chasekit::acyclicity::{
    is_grd_acyclic, is_jointly_acyclic, is_richly_acyclic, is_weakly_acyclic,
};
use chasekit::bench::truth::{critical_chase_truth, ChaseTruth};
use chasekit::datagen::{
    critical_constants, dl_lite_r, lubm, ontology_corpus, random_mixed, RandomConfig,
};
use chasekit::prelude::*;
use chasekit::termination::{
    is_critically_richly_acyclic, is_critically_weakly_acyclic, mfa_status, MfaStatus,
};

/// Checker fuel. Deliberately far below [`Budget::default`]: diverging
/// general programs grow the critical-instance chase until the atom cap,
/// and the suite runs hundreds of them across parallel test threads.
fn checker_budget() -> Budget {
    Budget { max_applications: 4_000, max_atoms: 40_000, ..Budget::unlimited() }
}

/// First-pass ground-truth budget. Small on purpose: on diverging general
/// programs the chase's join cost explodes with instance size, so the
/// cheap pass handles the (common) divergent case and only a `terminates`
/// claim meeting `Exceeded` pays for the escalated re-run — the same lazy
/// protocol as the landscape harness.
fn truth_budget() -> Budget {
    Budget { max_applications: 1_000, max_atoms: 10_000, ..Budget::unlimited() }
}

/// Escalated ground-truth budget: above the checker fuel and far above the
/// saturation sizes these small generated programs reach, so `Exceeded`
/// against a `terminates` claim is a genuine contradiction.
fn escalated_truth_budget() -> Budget {
    Budget { max_applications: 20_000, max_atoms: 200_000, ..Budget::unlimited() }
}

/// Checks every lattice edge on one program; returns the violations.
fn lattice_violations(name: &str, p: &Program) -> Vec<String> {
    let mut bad = Vec::new();
    let mut check = |ok: bool, law: &str| {
        if !ok {
            bad.push(format!("{name}: {law}"));
        }
    };

    let wa = is_weakly_acyclic(p);
    let ra = is_richly_acyclic(p);
    let ja = is_jointly_acyclic(p);
    let agrd = is_grd_acyclic(p);
    let budget = checker_budget();

    // The syntactic chain RA ⊆ WA ⊆ JA ⊆ MFA.
    check(!ra || wa, "RA accepted but WA rejected");
    check(!wa || ja, "WA accepted but JA rejected");
    let mfa = mfa_status(p, &budget);
    check(!ja || mfa != MfaStatus::NotMfa, "JA accepted but MFA found a cyclic term");

    // On linear inputs the critical variants subsume the syntactic ones.
    if p.class() <= RuleClass::Linear {
        let crit_wa = is_critically_weakly_acyclic(p).expect("class checked");
        let crit_ra = is_critically_richly_acyclic(p).expect("class checked");
        check(!wa || crit_wa, "WA accepted a linear set critical-WA rejects");
        check(!ra || crit_ra, "RA accepted a linear set critical-RA rejects");
    }

    // aGRD ⇒ termination under every variant: nothing may claim divergence.
    let so = decide(p, ChaseVariant::SemiOblivious, &budget);
    let ob = decide(p, ChaseVariant::Oblivious, &budget);
    if agrd {
        check(so.terminates != Some(false), "aGRD set claimed diverging (so)");
        check(ob.terminates != Some(false), "aGRD set claimed diverging (o)");
        check(
            restricted_verdict(p).terminates != Some(false),
            "aGRD set claimed diverging (restricted)",
        );
    }

    // Guarded inputs: the dispatcher IS the pumping procedure.
    if p.class() <= RuleClass::Guarded {
        for (variant, d) in
            [(ChaseVariant::SemiOblivious, so), (ChaseVariant::Oblivious, ob)]
        {
            let mut cfg = GuardedConfig::new(variant);
            cfg.max_applications = budget.max_applications;
            cfg.max_atoms = budget.max_atoms;
            let g = decide_guarded(p, cfg).expect("class checked");
            if let (Some(a), Some(b)) = (d.terminates, g.verdict.terminates()) {
                check(a == b, "portfolio and guarded pumping disagree");
            }
        }
    }

    // Nothing contradicts the engine. A `terminates` claim against a
    // chase that exhausts the generous budget — or a `diverges` claim
    // against a saturating one — is a soundness bug somewhere.
    for (variant, d) in [(ChaseVariant::SemiOblivious, so), (ChaseVariant::Oblivious, ob)] {
        let Some(claim) = d.terminates else { continue };
        let mut truth = critical_chase_truth(p, variant, &truth_budget());
        if claim && truth == ChaseTruth::Exceeded {
            truth = critical_chase_truth(p, variant, &escalated_truth_budget());
        }
        check(
            !(claim && truth == ChaseTruth::Exceeded),
            "claimed terminates but the critical chase exceeded the escalated budget",
        );
        check(
            claim || truth != ChaseTruth::Saturates,
            "claimed diverges but the critical chase saturated",
        );
    }

    bad
}

#[test]
fn lattice_holds_on_the_ontology_families() {
    let mut violations = Vec::new();
    for size in [2usize, 4, 7] {
        for seed in 0..25u64 {
            for lp in [
                dl_lite_r(size, seed),
                lubm(size, seed),
                critical_constants(size, seed),
            ] {
                violations.extend(lattice_violations(&lp.name, &lp.program));
            }
        }
    }
    assert!(violations.is_empty(), "{violations:#?}");
}

#[test]
fn lattice_holds_on_the_ontology_corpus() {
    let mut violations = Vec::new();
    for lp in ontology_corpus() {
        violations.extend(lattice_violations(&lp.name, &lp.program));
    }
    assert!(violations.is_empty(), "{violations:#?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// 200 mixed random programs (simple-linear / linear-with-constants /
    /// guarded / general, rotating by seed) through every lattice edge.
    #[test]
    fn lattice_holds_on_mixed_random_programs(seed in 0u64..1_000_000) {
        let p = random_mixed(&RandomConfig::default(), seed);
        let violations = lattice_violations(&format!("random_mixed#{seed}"), &p);
        prop_assert!(violations.is_empty(), "{violations:#?}");
    }
}
