//! Property-based tests (proptest) over randomly *structured* rule sets:
//! the invariants that must hold for every input, with shrinking when they
//! don't.

use proptest::prelude::*;

use chasekit::prelude::*;

/// Strategy: a small linear program built from scratch (not via seeds, so
/// proptest can shrink the structure itself).
///
/// Predicates p0..p2 with arities 1..=3; each rule: one body atom, one or
/// two head atoms; variables chosen from a small pool with repetitions.
fn linear_program() -> impl Strategy<Value = Program> {
    let arity = |p: usize| (p % 3) + 1;
    let atom = |pool: usize| {
        (0usize..3, proptest::collection::vec(0usize..pool, 3)).prop_map(move |(p, vars)| (p, vars))
    };
    proptest::collection::vec((atom(3), proptest::collection::vec(atom(5), 1..3)), 1..4).prop_map(
        move |rules| {
            let mut program = Program::new();
            let preds: Vec<_> = (0..3)
                .map(|i| program.vocab.declare_pred(&format!("p{i}"), arity(i)).unwrap())
                .collect();
            for ((bp, bvars), heads) in rules {
                let mut rb = RuleBuilder::new();
                let body_args: Vec<Term> = (0..arity(bp))
                    .map(|k| rb.var(&format!("X{}", bvars[k] % 3)))
                    .collect();
                rb.body_atom(preds[bp], body_args);
                for (hp, hvars) in heads {
                    let head_args: Vec<Term> = (0..arity(hp))
                        .map(|k| rb.var(&format!("X{}", hvars[k])))
                        .collect();
                    rb.head_atom(preds[hp], head_args);
                }
                // Head vars X3, X4 never occur in bodies: existential.
                program.add_rule(rb.build().unwrap()).unwrap();
            }
            program
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The exact linear decision agrees with what the chase actually does
    /// on the critical instance.
    #[test]
    fn exact_linear_decision_matches_the_chase(p in linear_program()) {
        prop_assume!(matches!(p.class(), RuleClass::SimpleLinear | RuleClass::Linear));
        let exact = decide_linear(&p, ChaseVariant::SemiOblivious, false).unwrap().terminates;
        let mut p2 = p.clone();
        let crit = CriticalInstance::build(&mut p2);
        let run = chase(
            &p2,
            ChaseVariant::SemiOblivious,
            crit.instance,
            &Budget { max_applications: 1_500, max_atoms: 15_000, ..Budget::unlimited() },
        );
        if run.outcome.is_saturated() {
            prop_assert!(exact, "chase saturated but checker says diverges");
        } else {
            prop_assert!(!exact, "checker says terminates but chase blew the budget");
        }
    }

    /// Sufficient conditions are sound: WA implies the exact decision.
    #[test]
    fn weak_acyclicity_implies_exact_termination(p in linear_program()) {
        prop_assume!(matches!(p.class(), RuleClass::SimpleLinear | RuleClass::Linear));
        if is_weakly_acyclic(&p) {
            prop_assert!(
                decide_linear(&p, ChaseVariant::SemiOblivious, false).unwrap().terminates
            );
        }
        if is_richly_acyclic(&p) {
            prop_assert!(
                decide_linear(&p, ChaseVariant::Oblivious, false).unwrap().terminates
            );
        }
    }

    /// Hierarchy: RA ⇒ WA ⇒ JA, and oblivious termination ⇒
    /// semi-oblivious termination.
    #[test]
    fn condition_hierarchy(p in linear_program()) {
        if is_richly_acyclic(&p) {
            prop_assert!(is_weakly_acyclic(&p));
        }
        if is_weakly_acyclic(&p) {
            prop_assert!(is_jointly_acyclic(&p));
        }
        prop_assume!(matches!(p.class(), RuleClass::SimpleLinear | RuleClass::Linear));
        let o = decide_linear(&p, ChaseVariant::Oblivious, false).unwrap().terminates;
        let so = decide_linear(&p, ChaseVariant::SemiOblivious, false).unwrap().terminates;
        if o {
            prop_assert!(so, "CT-o ⊆ CT-so violated");
        }
    }

    /// Decisions are invariant under predicate renaming.
    #[test]
    fn decisions_invariant_under_renaming(p in linear_program()) {
        prop_assume!(matches!(p.class(), RuleClass::SimpleLinear | RuleClass::Linear));
        let before = decide_linear(&p, ChaseVariant::SemiOblivious, false).unwrap().terminates;
        // Rename by pretty-printing and re-parsing with prefixed names.
        let text = chasekit::core::display::program_to_string(&p)
            .replace("p0", "zebra")
            .replace("p1", "yak")
            .replace("p2", "xerus");
        let renamed = Program::parse(&text).unwrap();
        let after = decide_linear(&renamed, ChaseVariant::SemiOblivious, false)
            .unwrap()
            .terminates;
        prop_assert_eq!(before, after);
    }

    /// The chase is monotone in the database: adding facts never turns a
    /// saturating semi-oblivious run into one that produces fewer atoms.
    #[test]
    fn chase_is_monotone_in_the_database(p in linear_program(), extra in 0usize..3) {
        prop_assume!(matches!(p.class(), RuleClass::SimpleLinear | RuleClass::Linear));
        prop_assume!(decide_linear(&p, ChaseVariant::SemiOblivious, false).unwrap().terminates);
        let mut p = p.clone();
        let c0 = p.vocab.intern_const("m0");
        let c1 = p.vocab.intern_const("m1");
        let preds = p.rule_predicates();
        prop_assume!(!preds.is_empty());
        let mk = |pred, c: Term, p: &Program| {
            Atom::new(pred, vec![c; p.vocab.arity(pred)])
        };
        let small = Instance::from_atoms([mk(preds[0], Term::Const(c0), &p)]);
        let mut big_atoms = vec![mk(preds[0], Term::Const(c0), &p)];
        for i in 0..extra {
            let pred = preds[i % preds.len()];
            big_atoms.push(mk(pred, Term::Const(c1), &p));
        }
        let big = Instance::from_atoms(big_atoms);

        let small_run = chase(&p, ChaseVariant::SemiOblivious, small, &Budget::default());
        let big_run = chase(&p, ChaseVariant::SemiOblivious, big, &Budget::default());
        prop_assert_eq!(small_run.outcome, StopReason::Saturated);
        prop_assert_eq!(big_run.outcome, StopReason::Saturated);
        prop_assert!(big_run.instance.len() >= small_run.instance.len());
    }
}

#[test]
fn proptest_strategy_generates_linear_programs() {
    // Sanity: the strategy's output is linear by construction.
    use proptest::strategy::ValueTree;
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::deterministic();
    for _ in 0..20 {
        let p = linear_program().new_tree(&mut runner).unwrap().current();
        assert!(matches!(p.class(), RuleClass::SimpleLinear | RuleClass::Linear));
    }
}
