//! Differential testing of the observability layer: tracing must be
//! **observationally free**.
//!
//! A traced run and an untraced run must be bit-identical — same
//! checkpoint text (instance, queue, identity set, RNG, stats), same stop
//! reason — at 1, 2, and 4 threads, over the full datagen corpus and 50
//! proptest-generated programs. The trace itself must be byte-identical
//! across thread counts. And the metrics registry must reconcile exactly
//! with [`ChaseStats`] and with the trace event stream, including under
//! random scheduling and on a 2000-seed population of random guarded
//! programs.
//!
//! [`ChaseStats`]: chasekit::engine::ChaseStats

use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use chasekit::datagen::{random_guarded, RandomConfig};
use chasekit::engine::{
    validate_trace_line, ChaseConfig, ChaseMachine, ChaseStats, JsonlSink, MetricsRegistry,
    MetricsSink, MultiSink, TraceSink,
};
use chasekit::prelude::*;

const VARIANTS: [ChaseVariant; 3] =
    [ChaseVariant::Oblivious, ChaseVariant::SemiOblivious, ChaseVariant::Restricted];

/// The chase's initial instance for a program: its facts, or the critical
/// instance when it carries none.
fn seed(program: &mut Program) -> Instance {
    if program.facts().is_empty() {
        CriticalInstance::build(program).instance
    } else {
        Instance::from_atoms(program.facts().iter().cloned())
    }
}

fn state_text(m: &ChaseMachine<'_>) -> String {
    m.snapshot().to_text().expect("untracked runs serialize")
}

/// A `Write` target readable after the owning machine is dropped.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn new() -> Self {
        SharedBuf(Arc::new(Mutex::new(Vec::new())))
    }

    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("traces are UTF-8")
    }
}

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs the untraced sequential oracle, then traced runs at 1/2/4 threads,
/// asserting bit-identity of state and byte-identity of traces. Returns
/// the trace for further checks.
fn assert_tracing_is_free(
    label: &str,
    program: &Program,
    initial: &Instance,
    variant: ChaseVariant,
    budget: &Budget,
) -> String {
    let cfg = ChaseConfig::of(variant);
    let mut plain = ChaseMachine::new(program, cfg, initial.clone());
    let stop = plain.run(budget);
    let text = state_text(&plain);
    let stats = plain.stats().clone();

    let mut traces: Vec<String> = Vec::new();
    for threads in [1usize, 2, 4] {
        let buf = SharedBuf::new();
        let sink = JsonlSink::new(buf.clone(), program);
        let mut traced =
            ChaseMachine::new_with_trace(program, cfg, initial.clone(), Box::new(sink));
        let traced_stop = if threads <= 1 {
            traced.run(budget)
        } else {
            traced.run_parallel(budget, threads)
        };
        assert_eq!(stop, traced_stop, "{label}: {variant:?} stop @ {threads} threads");
        assert_eq!(
            text,
            state_text(&traced),
            "{label}: {variant:?} traced state diverged @ {threads} threads"
        );
        assert_eq!(&stats, traced.stats(), "{label}: {variant:?} stats @ {threads} threads");
        traces.push(buf.contents());
    }
    assert_eq!(traces[0], traces[1], "{label}: {variant:?} trace differs @ 2 threads");
    assert_eq!(traces[0], traces[2], "{label}: {variant:?} trace differs @ 4 threads");
    traces.pop().unwrap()
}

/// Counts core-event kinds in a trace and checks them against the stats —
/// the trace-stream side of the reconciliation triangle.
fn assert_trace_matches_stats(label: &str, trace: &str, stats: &ChaseStats) {
    let mut applies = 0u64;
    let mut atoms = 0u64;
    let mut admits = 0u64;
    let mut dedups = 0u64;
    let mut skips = 0u64;
    for line in trace.lines() {
        match validate_trace_line(line).unwrap_or_else(|e| panic!("{label}: `{line}`: {e}")) {
            "apply" => applies += 1,
            "atom" => atoms += 1,
            "admit" => admits += 1,
            "dedup" => dedups += 1,
            "skip" => skips += 1,
            _ => {}
        }
    }
    assert_eq!(applies, stats.applications, "{label}: apply events");
    assert_eq!(atoms, stats.atoms_added, "{label}: atom events");
    assert_eq!(admits, stats.triggers_enqueued, "{label}: admit events");
    assert_eq!(dedups, stats.triggers_deduped, "{label}: dedup events");
    assert_eq!(skips, stats.satisfied_skips, "{label}: skip events");
}

/// The registry side of the reconciliation triangle: counters, per-rule
/// totals, and the apply histogram must match the stats exactly.
fn assert_metrics_match_stats(label: &str, registry: &MetricsRegistry, stats: &ChaseStats) {
    assert_eq!(registry.counter("chase.applications"), stats.applications, "{label}");
    assert_eq!(registry.counter("atoms.inserted"), stats.atoms_added, "{label}");
    assert_eq!(registry.counter("triggers.admitted"), stats.triggers_enqueued, "{label}");
    assert_eq!(registry.counter("triggers.deduped"), stats.triggers_deduped, "{label}");
    assert_eq!(registry.counter("triggers.skipped"), stats.satisfied_skips, "{label}");
    assert_eq!(registry.counter("atoms.duplicates"), stats.duplicate_atoms, "{label}");

    let per_rule = registry.per_rule();
    assert_eq!(
        per_rule.iter().map(|r| r.applied).sum::<u64>(),
        stats.applications,
        "{label}: per-rule applied must sum to the global counter"
    );
    assert_eq!(
        per_rule.iter().map(|r| r.atoms_added).sum::<u64>(),
        stats.atoms_added,
        "{label}: per-rule atoms_added must sum to the global counter"
    );
    assert_eq!(
        registry.per_pred().iter().sum::<u64>(),
        stats.atoms_added,
        "{label}: per-predicate insertions must sum to the global counter"
    );

    let h = registry.histogram("apply.new_atoms").expect("pre-created");
    assert_eq!(h.count, stats.applications, "{label}: histogram count");
    assert_eq!(h.sum, stats.atoms_added, "{label}: histogram sum");
}

/// The full datagen corpus: tracing is observationally free for every
/// family, every variant, at 1/2/4 threads — and the trace stream
/// reconciles with the stats.
#[test]
fn datagen_corpus_tracing_is_observationally_free() {
    let budget = Budget::applications(250).with_atoms(4_000);
    for family in chasekit::datagen::corpus() {
        let mut program = family.program.clone();
        let initial = seed(&mut program);
        for variant in VARIANTS {
            let trace =
                assert_tracing_is_free(&family.name, &program, &initial, variant, &budget);
            let mut oracle = ChaseMachine::new(&program, ChaseConfig::of(variant), initial.clone());
            oracle.run(&budget);
            assert_trace_matches_stats(&family.name, &trace, oracle.stats());
        }
    }
}

/// Strategy shared with the parallel differential suite: small random
/// programs with joins and head-only (existential) variables.
fn random_program() -> impl Strategy<Value = Program> {
    let arity = |p: usize| (p % 3) + 1;
    let atom = |pool: usize| {
        (0usize..3, proptest::collection::vec(0usize..pool, 3)).prop_map(move |(p, vars)| (p, vars))
    };
    proptest::collection::vec(
        (proptest::collection::vec(atom(4), 1..3), proptest::collection::vec(atom(6), 1..3)),
        1..4,
    )
    .prop_map(move |rules| {
        let mut program = Program::new();
        let preds: Vec<_> = (0..3)
            .map(|i| program.vocab.declare_pred(&format!("p{i}"), arity(i)).unwrap())
            .collect();
        for (body, heads) in rules {
            let mut rb = RuleBuilder::new();
            for (bp, bvars) in body {
                let args: Vec<Term> =
                    (0..arity(bp)).map(|k| rb.var(&format!("X{}", bvars[k] % 4))).collect();
                rb.body_atom(preds[bp], args);
            }
            for (hp, hvars) in heads {
                let args: Vec<Term> =
                    (0..arity(hp)).map(|k| rb.var(&format!("X{}", hvars[k]))).collect();
                rb.head_atom(preds[hp], args);
            }
            program.add_rule(rb.build().unwrap()).unwrap();
        }
        program
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(50))]

    /// 50 random programs: traced and untraced runs are bit-identical for
    /// every variant at 1/2/4 threads, with thread-invariant traces.
    #[test]
    fn random_programs_tracing_is_observationally_free(p in random_program()) {
        let mut program = p;
        let initial = seed(&mut program);
        let budget = Budget::applications(80).with_atoms(2_000);
        for variant in VARIANTS {
            assert_tracing_is_free("random", &program, &initial, variant, &budget);
        }
    }

    /// Metrics reconcile exactly with the stats and the trace stream on
    /// random programs under **random scheduling** — the draw order is
    /// arbitrary, the accounting still has to balance.
    #[test]
    fn metrics_reconcile_under_random_scheduling(
        p in random_program(),
        sched_seed in any::<u64>(),
    ) {
        let mut program = p;
        let initial = seed(&mut program);
        let budget = Budget::applications(60).with_atoms(1_500);
        for variant in VARIANTS {
            let cfg = ChaseConfig::of(variant).with_random_scheduling(sched_seed);
            let buf = SharedBuf::new();
            let metrics = MetricsSink::new(&program);
            let registry = metrics.registry();
            let sink = MultiSink::new(vec![
                Box::new(JsonlSink::new(buf.clone(), &program)) as Box<dyn TraceSink>,
                Box::new(metrics),
            ]);
            let mut m =
                ChaseMachine::new_with_trace(&program, cfg, initial.clone(), Box::new(sink));
            m.run(&budget);
            let stats = m.stats().clone();
            drop(m);
            assert_trace_matches_stats("random-sched", &buf.contents(), &stats);
            assert_metrics_match_stats("random-sched", &registry.lock().unwrap(), &stats);
        }
    }
}

/// 2000-seed population of random guarded programs (the E4 population):
/// metrics JSON reconciles exactly with the stats on every run.
#[test]
fn metrics_reconcile_on_population_runs() {
    let cfg = RandomConfig {
        predicates: 4,
        max_arity: 3,
        rules: 4,
        existential_prob: 0.35,
        max_head_atoms: 2,
        complexity: 0.4,
        constants: 0,
    };
    let budget = Budget::applications(40).with_atoms(1_000);
    for s in 0..2_000u64 {
        let mut program = random_guarded(&cfg, 7_000 + s);
        let initial = seed(&mut program);
        let metrics = MetricsSink::new(&program);
        let registry = metrics.registry();
        let mut m = ChaseMachine::new_with_trace(
            &program,
            ChaseConfig::of(ChaseVariant::SemiOblivious),
            initial,
            Box::new(metrics),
        );
        m.run(&budget);
        let stats = m.stats().clone();
        let registry = registry.lock().unwrap();
        assert_metrics_match_stats(&format!("seed {s}"), &registry, &stats);
        // The JSON export is deterministic and carries the same totals.
        let json = registry.to_json();
        assert_eq!(json, registry.to_json(), "seed {s}: JSON must be deterministic");
        assert!(
            json.contains(&format!("\"chase.applications\": {}", stats.applications))
                || stats.applications == 0,
            "seed {s}: JSON must carry the applications counter"
        );
    }
}
