//! Golden-file snapshot tests of the JSONL trace schema.
//!
//! Fixed runs of the paper's Examples 1 and 2 under all three chase
//! variants must produce **byte-identical** trace files, committed under
//! `tests/golden/`. Any schema change shows up as a diff here (regenerate
//! deliberately with `UPDATE_GOLDEN=1 cargo test --test golden_trace`),
//! and every emitted line must pass the closed-schema validator — the
//! guard against silent drift. Default traces contain only core and
//! lifecycle events, so they are also byte-identical at every thread
//! count; that invariance is asserted directly.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use chasekit::engine::{validate_trace_line, ChaseConfig, ChaseMachine, JsonlSink};
use chasekit::prelude::*;

const VARIANTS: [(ChaseVariant, &str); 3] = [
    (ChaseVariant::Oblivious, "oblivious"),
    (ChaseVariant::SemiOblivious, "semi_oblivious"),
    (ChaseVariant::Restricted, "restricted"),
];

/// Paper Examples 1 and 2, seeded with their facts. Both diverge, so a
/// small application budget gives a stable, non-trivial event stream with
/// a deterministic `stop` record.
const EXAMPLES: [(&str, &str); 2] = [
    ("example1", "person(bob). person(X) -> hasFather(X, Y), person(Y)."),
    ("example2", "p(a, b). p(X, Y) -> p(Y, Z)."),
];

const BUDGET_APPLICATIONS: u64 = 12;

/// A `Write` target the test can read back after the sink (and the machine
/// owning it) is dropped.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn new() -> Self {
        SharedBuf(Arc::new(Mutex::new(Vec::new())))
    }

    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("traces are UTF-8")
    }
}

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs `text` under `variant` with a JSONL sink and returns the trace.
fn trace_of(text: &str, variant: ChaseVariant, threads: usize) -> String {
    let program = Program::parse(text).unwrap();
    let initial = Instance::from_atoms(program.facts().iter().cloned());
    let buf = SharedBuf::new();
    let sink = JsonlSink::new(buf.clone(), &program);
    let mut machine = ChaseMachine::new_with_trace(
        &program,
        ChaseConfig::of(variant),
        initial,
        Box::new(sink),
    );
    let budget = Budget::applications(BUDGET_APPLICATIONS);
    if threads <= 1 {
        machine.run(&budget);
    } else {
        machine.run_parallel(&budget, threads);
    }
    buf.contents()
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

#[test]
fn golden_traces_are_byte_stable() {
    for (example, text) in EXAMPLES {
        for (variant, tag) in VARIANTS {
            let got = trace_of(text, variant, 1);
            let path = golden_path(&format!("{example}_{tag}.jsonl"));
            if std::env::var("UPDATE_GOLDEN").is_ok() {
                std::fs::create_dir_all(path.parent().unwrap()).unwrap();
                std::fs::write(&path, &got).unwrap();
            }
            let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "missing golden file {path:?} ({e}); regenerate with \
                     UPDATE_GOLDEN=1 cargo test --test golden_trace"
                )
            });
            assert_eq!(
                got, want,
                "trace drift for {example} under {variant:?}; if intentional, \
                 regenerate with UPDATE_GOLDEN=1"
            );
        }
    }
}

#[test]
fn golden_traces_pass_the_closed_schema() {
    for (example, text) in EXAMPLES {
        for (variant, _) in VARIANTS {
            let trace = trace_of(text, variant, 1);
            assert!(!trace.is_empty(), "{example} {variant:?} produced no events");
            for line in trace.lines() {
                validate_trace_line(line)
                    .unwrap_or_else(|e| panic!("{example} {variant:?}: `{line}`: {e}"));
            }
            // The stream must end with the lifecycle stop record.
            let last = trace.lines().last().unwrap();
            assert_eq!(validate_trace_line(last).unwrap(), "stop", "{example} {variant:?}");
        }
    }
}

#[test]
fn default_traces_are_identical_at_every_thread_count() {
    for (example, text) in EXAMPLES {
        for (variant, _) in VARIANTS {
            let sequential = trace_of(text, variant, 1);
            for threads in [2, 4] {
                assert_eq!(
                    sequential,
                    trace_of(text, variant, threads),
                    "{example} {variant:?}: trace differs at {threads} threads"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The incremental-update scenario.
// ---------------------------------------------------------------------------

/// A program where a retraction exercises every update event: the cone of
/// `p(a)` is overdeleted, `q(a)` is restored (it is also a base fact), and
/// the added root `p(c)` re-fires the rules.
const UPDATE_PROGRAM: &str = "p(X) -> q(X). q(X) -> e(X, Y). p(a). p(b). q(a).";
const UPDATE_SCRIPT: &str = "% swap one root for another\nretract p(a).\nadd p(c).";

/// Runs the update scenario — a derivation-tracked chase to saturation,
/// then the edit script — returning the trace (empty when untraced) plus
/// the machine's observable end state: Skolem-canonical instance+DAG
/// rendering, stats, and the raw DAG debug form.
fn update_run(variant: ChaseVariant, traced: bool) -> (String, Vec<String>, String, String) {
    let mut program = Program::parse(UPDATE_PROGRAM).unwrap();
    let edits = chasekit::engine::parse_edit_script(UPDATE_SCRIPT, &mut program).unwrap();
    let initial = Instance::from_atoms(program.facts().iter().cloned());
    let cfg = ChaseConfig::of(variant).with_derivation();
    let buf = SharedBuf::new();
    let mut machine = if traced {
        let sink = JsonlSink::new(buf.clone(), &program);
        ChaseMachine::new_with_trace(&program, cfg, initial, Box::new(sink))
    } else {
        ChaseMachine::new(&program, cfg, initial)
    };
    let budget = Budget::applications(100);
    machine.run(&budget);
    machine.apply_edits(&edits, &budget).unwrap();
    machine.flush_trace();
    let canonical =
        chasekit::engine::canonical_form(machine.instance(), machine.derivation());
    let stats = format!("{:?}", machine.stats());
    let dag = format!("{:?}", machine.derivation());
    (buf.contents(), canonical, stats, dag)
}

#[test]
fn golden_update_traces_are_byte_stable_and_schema_valid() {
    for (variant, tag) in VARIANTS {
        let (trace, ..) = update_run(variant, true);
        let kinds: Vec<&str> = trace
            .lines()
            .map(|l| validate_trace_line(l).unwrap_or_else(|e| panic!("{tag}: `{l}`: {e}")))
            .collect();
        for kind in ["retract", "rederive", "edit"] {
            assert!(kinds.contains(&kind), "{tag}: no `{kind}` event in:\n{trace}");
        }
        let path = golden_path(&format!("update_{tag}.jsonl"));
        if std::env::var("UPDATE_GOLDEN").is_ok() {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &trace).unwrap();
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {path:?} ({e}); regenerate with \
                 UPDATE_GOLDEN=1 cargo test --test golden_trace"
            )
        });
        assert_eq!(
            trace, want,
            "update trace drift under {variant:?}; if intentional, \
             regenerate with UPDATE_GOLDEN=1"
        );
    }
}

/// Tracing must be a pure observer: the updated machine's instance, DAG,
/// and stats are identical with and without a sink attached.
#[test]
fn update_run_is_unchanged_by_tracing() {
    for (variant, tag) in VARIANTS {
        let (_, canon_t, stats_t, dag_t) = update_run(variant, true);
        let (trace, canon_u, stats_u, dag_u) = update_run(variant, false);
        assert!(trace.is_empty());
        assert_eq!(canon_t, canon_u, "{tag}: instance differs under tracing");
        assert_eq!(stats_t, stats_u, "{tag}: stats differ under tracing");
        assert_eq!(dag_t, dag_u, "{tag}: derivation DAG differs under tracing");
    }
}

/// Core sequence numbers are dense: line `k`'s `"seq"` field counts the
/// core events before it, with lifecycle records reusing the current
/// number. Parses the golden runs rather than trusting the writer.
#[test]
fn sequence_numbers_are_contiguous() {
    for (example, text) in EXAMPLES {
        for (variant, _) in VARIANTS {
            let trace = trace_of(text, variant, 1);
            let mut expected = 0u64;
            for line in trace.lines() {
                let kind = validate_trace_line(line).unwrap();
                let seq: u64 = line
                    .split("\"seq\":")
                    .nth(1)
                    .and_then(|r| r.split([',', '}']).next())
                    .and_then(|d| d.parse().ok())
                    .unwrap();
                assert_eq!(seq, expected, "{example} {variant:?}: `{line}`");
                if !matches!(kind, "stop" | "ckpt-write" | "ckpt-resume") {
                    expected += 1;
                }
            }
        }
    }
}
