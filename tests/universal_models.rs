//! Semantic invariants of the chase: results are models of the rules,
//! contain the input, and are universal (homomorphically minimal among
//! models) — checked across variants on terminating workloads.

use chasekit::core::{hom_equivalent, instance_hom_exists};
use chasekit::datagen::{random_database, random_linear, DbConfig, RandomConfig};
use chasekit::engine::contains_instance;
use chasekit::prelude::*;

fn terminating_samples() -> Vec<Program> {
    let cfg = RandomConfig { constants: 1, complexity: 0.4, ..RandomConfig::default() };
    let mut out = Vec::new();
    let mut seed = 0u64;
    while out.len() < 25 && seed < 2_000 {
        let p = random_linear(&cfg, 222_000 + seed);
        if decide_linear(&p, ChaseVariant::SemiOblivious, false).unwrap().terminates {
            out.push(p);
        }
        seed += 1;
    }
    assert!(out.len() >= 25, "not enough terminating samples");
    out
}

#[test]
fn chase_results_are_models_containing_the_input() {
    for (i, mut p) in terminating_samples().into_iter().enumerate() {
        let db = random_database(&mut p, &DbConfig { facts: 10, constants: 4 }, i as u64);
        for variant in [
            ChaseVariant::SemiOblivious,
            ChaseVariant::Restricted,
        ] {
            let run = chase(&p, variant, db.clone(), &Budget::default());
            assert_eq!(run.outcome, StopReason::Saturated, "sample {i} {variant}");
            assert!(is_model(&p, &run.instance), "sample {i} {variant}: not a model");
            assert!(
                contains_instance(&run.instance, &db),
                "sample {i} {variant}: lost input atoms"
            );
        }
    }
}

#[test]
fn variant_results_are_homomorphically_equivalent() {
    // All chase variants compute universal models of the same theory, so
    // the results embed into each other.
    for (i, mut p) in terminating_samples().into_iter().enumerate().take(15) {
        let db = random_database(&mut p, &DbConfig { facts: 8, constants: 3 }, 900 + i as u64);
        let so = chase(&p, ChaseVariant::SemiOblivious, db.clone(), &Budget::default());
        let rst = chase(&p, ChaseVariant::Restricted, db, &Budget::default());
        if so.outcome != StopReason::Saturated || rst.outcome != StopReason::Saturated {
            continue; // termination is per-database here; skip blowups
        }
        assert!(
            hom_equivalent(&so.instance, &rst.instance),
            "sample {i}: variants disagree up to homomorphism"
        );
    }
}

#[test]
fn restricted_result_is_no_larger_than_semi_oblivious() {
    for (i, mut p) in terminating_samples().into_iter().enumerate().take(15) {
        let db = random_database(&mut p, &DbConfig { facts: 8, constants: 3 }, 1_800 + i as u64);
        let so = chase(&p, ChaseVariant::SemiOblivious, db.clone(), &Budget::default());
        let rst = chase(&p, ChaseVariant::Restricted, db, &Budget::default());
        if so.outcome != StopReason::Saturated || rst.outcome != StopReason::Saturated {
            continue;
        }
        assert!(
            rst.instance.len() <= so.instance.len(),
            "sample {i}: restricted produced more atoms than semi-oblivious"
        );
    }
}

#[test]
fn oblivious_result_embeds_the_semi_oblivious_result() {
    // The o-chase applies a superset of so-triggers: its result contains a
    // homomorphic image of the so-result (both universal over the same
    // theory when both terminate).
    let p = Program::parse(
        "emp(a). emp(X) -> dept(X, D), mgr(D, M). mgr(D, M) -> boss(M).",
    )
    .unwrap();
    let db = Instance::from_atoms(p.facts().iter().cloned());
    let o = chase(&p, ChaseVariant::Oblivious, db.clone(), &Budget::default());
    let so = chase(&p, ChaseVariant::SemiOblivious, db, &Budget::default());
    assert_eq!(o.outcome, StopReason::Saturated);
    assert_eq!(so.outcome, StopReason::Saturated);
    assert!(instance_hom_exists(&so.instance, &o.instance));
    assert!(instance_hom_exists(&o.instance, &so.instance));
}

#[test]
fn universal_model_embeds_into_handcrafted_models() {
    // Chase result embeds into any model we construct by hand.
    let p = Program::parse("emp(a). emp(X) -> dept(X, D).").unwrap();
    let run = chase_facts(&p, ChaseVariant::Restricted, &Budget::default());
    assert_eq!(run.outcome, StopReason::Saturated);

    // Handcrafted model: emp(a), dept(a, hq).
    let mut handmade = p.clone();
    let emp = handmade.vocab.pred("emp").unwrap();
    let dept = handmade.vocab.pred("dept").unwrap();
    let a = handmade.vocab.constant("a").unwrap();
    let hq = handmade.vocab.intern_const("hq");
    let model = Instance::from_atoms([
        Atom::new(emp, vec![Term::Const(a)]),
        Atom::new(dept, vec![Term::Const(a), Term::Const(hq)]),
    ]);
    assert!(is_model(&handmade, &model));
    assert!(
        instance_hom_exists(&run.instance, &model),
        "universal model must embed into every model"
    );
    // And not necessarily vice versa (hq is a named constant).
    assert!(!instance_hom_exists(&model, &run.instance));
}
