//! The verdict oracle: every portfolio checker over the full calibration
//! corpus, cross-validated against the bounded chase and locked as a
//! golden verdict table.
//!
//! One line per corpus member records what every checker says (the
//! syntactic conditions, the portfolio decision + method per variant, the
//! restricted-chase procedure) and what the chase engine actually did on
//! the critical instance under all three variants. Any behavioural drift
//! in any checker shows up as a readable per-member diff against
//! `tests/golden/checker_verdicts.txt`; regenerate deliberately with
//! `UPDATE_GOLDEN=1 cargo test --test checker_oracle`.
//!
//! Cross-validation rules (the restricted asymmetry is deliberate):
//!
//! * a `terminates` claim against a chase that exceeded the escalated
//!   budget is a failure under **every** variant — CT-restricted
//!   quantifies over all fair orders, so a diverging order on the
//!   critical instance already refutes it;
//! * a `diverges` claim against a saturating chase is a failure for the
//!   oblivious/semi-oblivious variants (Marnette: critical-instance
//!   saturation decides CT there) but is skipped for the restricted
//!   chase, where one saturating order proves nothing about the others.

use std::path::PathBuf;

use chasekit::bench::truth::{critical_chase_truth, ChaseTruth};
use chasekit::datagen::{corpus, ontology_corpus};
use chasekit::prelude::*;
use chasekit::termination::{mfa_status, MfaStatus};
use chasekit::acyclicity::{
    is_grd_acyclic, is_jointly_acyclic, is_richly_acyclic, is_weakly_acyclic,
};

fn checker_budget() -> Budget {
    Budget { max_applications: 50_000, max_atoms: 500_000, ..Budget::unlimited() }
}

fn truth_budget() -> Budget {
    Budget { max_applications: 100_000, max_atoms: 1_000_000, ..Budget::unlimited() }
}

fn escalated_truth_budget() -> Budget {
    Budget { max_applications: 800_000, max_atoms: 8_000_000, ..Budget::unlimited() }
}

fn yn(b: bool) -> &'static str {
    if b {
        "y"
    } else {
        "n"
    }
}

fn verdict(v: Option<bool>) -> &'static str {
    match v {
        Some(true) => "terminates",
        Some(false) => "diverges",
        None => "unknown",
    }
}

fn truth_str(t: ChaseTruth) -> &'static str {
    match t {
        ChaseTruth::Saturates => "saturates",
        ChaseTruth::Exceeded => "exceeded",
    }
}

/// One member's verdict line + any cross-validation failures.
fn verdict_line(name: &str, p: &Program) -> (String, Vec<String>) {
    let wa = is_weakly_acyclic(p);
    let ra = is_richly_acyclic(p);
    let ja = is_jointly_acyclic(p);
    let agrd = is_grd_acyclic(p);
    let mfa = match mfa_status(p, &checker_budget()) {
        MfaStatus::Mfa => "y",
        MfaStatus::NotMfa => "n",
        MfaStatus::Unknown => "?",
    };
    let so = decide(p, ChaseVariant::SemiOblivious, &checker_budget());
    let ob = decide(p, ChaseVariant::Oblivious, &checker_budget());
    let restricted = restricted_verdict(p);

    // Bounded-chase oracle, with the lazy escalation for terminates-vs-
    // exceeded pairs.
    let mut failures = Vec::new();
    let mut truths = Vec::new();
    let claims = [so.terminates, ob.terminates, restricted.terminates];
    for (vi, variant) in
        [ChaseVariant::SemiOblivious, ChaseVariant::Oblivious, ChaseVariant::Restricted]
            .into_iter()
            .enumerate()
    {
        let mut truth = critical_chase_truth(p, variant, &truth_budget());
        if claims[vi] == Some(true) && truth == ChaseTruth::Exceeded {
            truth = critical_chase_truth(p, variant, &escalated_truth_budget());
        }
        if claims[vi] == Some(true) && truth == ChaseTruth::Exceeded {
            failures.push(format!(
                "{name}: claims terminates under {variant:?} but the critical chase \
                 exceeded the escalated budget"
            ));
        }
        if claims[vi] == Some(false)
            && truth == ChaseTruth::Saturates
            && variant != ChaseVariant::Restricted
        {
            failures.push(format!(
                "{name}: claims diverges under {variant:?} but the critical chase saturated"
            ));
        }
        truths.push(truth);
    }

    let line = format!(
        "{name:<24} class={:<12} wa={} ra={} ja={} agrd={} mfa={} | \
         so={}/{:?} o={}/{:?} restricted={}/{:?} | \
         chase so={} o={} restricted={}",
        p.class().to_string(),
        yn(wa),
        yn(ra),
        yn(ja),
        yn(agrd),
        mfa,
        verdict(so.terminates),
        so.method,
        verdict(ob.terminates),
        ob.method,
        verdict(restricted.terminates),
        restricted.method,
        truth_str(truths[0]),
        truth_str(truths[1]),
        truth_str(truths[2]),
    );
    (line, failures)
}

fn full_table() -> (String, Vec<String>) {
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    for lp in corpus().into_iter().chain(ontology_corpus()) {
        let (line, bad) = verdict_line(&lp.name, &lp.program);
        // The corpus's analytic labels participate in the oracle too.
        for (label, got, tag) in [
            (lp.so_terminates, decide(
                &lp.program,
                ChaseVariant::SemiOblivious,
                &checker_budget(),
            )
            .terminates, "so"),
            (lp.o_terminates, decide(&lp.program, ChaseVariant::Oblivious, &checker_budget())
                .terminates, "o"),
        ] {
            if let Some(want) = label {
                if got != Some(want) {
                    failures.push(format!(
                        "{}: portfolio ({tag}) disagrees with the analytic label {want}",
                        lp.name
                    ));
                }
            }
        }
        lines.push(line);
        failures.extend(bad);
    }
    (lines.join("\n") + "\n", failures)
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/checker_verdicts.txt")
}

#[test]
fn verdict_table_matches_golden_and_the_chase() {
    let (got, failures) = full_table();
    assert!(failures.is_empty(), "oracle cross-validation failed:\n{failures:#?}");

    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &got).unwrap();
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {path:?} ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test --test checker_oracle"
        )
    });

    // Per-member diff first: a drifting checker names the member it
    // drifted on instead of a wall-of-text mismatch.
    for (g, w) in got.lines().zip(want.lines()) {
        assert_eq!(
            g, w,
            "verdict drift (regenerate with UPDATE_GOLDEN=1 if intentional)"
        );
    }
    assert_eq!(got, want, "verdict table changed shape (member added/removed?)");
}
