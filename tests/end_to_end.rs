//! End-to-end pipelines across crates: parse → classify → decide → chase,
//! with every checker cross-validated against every other on the corpus.

use chasekit::datagen::{corpus, random_guarded, random_linear, RandomConfig};
use chasekit::prelude::*;
use chasekit::termination::{pumping_decide, GuardedVerdict};

#[test]
fn corpus_decisions_match_ground_truth_for_both_variants() {
    for lp in corpus() {
        for (variant, expected) in [
            (ChaseVariant::SemiOblivious, lp.so_terminates),
            (ChaseVariant::Oblivious, lp.o_terminates),
        ] {
            let d = decide(&lp.program, variant, &Budget::default());
            assert_eq!(d.terminates, expected, "{} under {variant}", lp.name);
        }
    }
}

#[test]
fn corpus_roundtrips_through_the_parser() {
    use chasekit::core::display::program_to_string;
    for lp in corpus() {
        let text = program_to_string(&lp.program);
        let reparsed = Program::parse(&text).unwrap_or_else(|e| {
            panic!("{} failed to reparse: {e}\n{text}", lp.name);
        });
        assert_eq!(reparsed.rules().len(), lp.program.rules().len(), "{}", lp.name);
        // Decisions are invariant under the round trip.
        let before = decide(&lp.program, ChaseVariant::SemiOblivious, &Budget::default());
        let after = decide(&reparsed, ChaseVariant::SemiOblivious, &Budget::default());
        assert_eq!(before.terminates, after.terminates, "{}", lp.name);
    }
}

/// The exact linear procedure and the guarded pumping procedure are
/// independent implementations that must agree on linear inputs.
#[test]
fn linear_and_guarded_procedures_agree_on_random_linear_sets() {
    let cfg = RandomConfig { constants: 1, complexity: 0.4, ..RandomConfig::default() };
    let mut decided = 0;
    for seed in 0..120 {
        let p = random_linear(&cfg, 555_000 + seed);
        for variant in [ChaseVariant::SemiOblivious, ChaseVariant::Oblivious] {
            let exact = decide_linear(&p, variant, false).unwrap().terminates;
            let mut gcfg = GuardedConfig::new(variant);
            // Keep the cross-validation cheap: undecided seeds are skipped.
            gcfg.max_applications = 1_500;
            gcfg.max_atoms = 20_000;
            let report = decide_guarded(&p, gcfg).unwrap();
            if let Some(pumping) = report.verdict.terminates() {
                assert_eq!(pumping, exact, "seed {seed} under {variant}");
                decided += 1;
            }
        }
    }
    assert!(decided > 200, "pumping procedure decided too few: {decided}");
}

/// The general pumping semi-decision is sound on arbitrary rule sets:
/// whenever it decides, a long chase run agrees.
#[test]
fn general_pumping_agrees_with_long_chase_runs() {
    let cfg = RandomConfig::default();
    for seed in 0..40 {
        let p = chasekit::datagen::random_general(&cfg, 31_337 + seed);
        let mut gcfg = GuardedConfig::new(ChaseVariant::SemiOblivious);
        gcfg.max_applications = 600;
        gcfg.max_atoms = 8_000;
        let Ok(report) = pumping_decide(&p, gcfg) else { continue };
        let claim = match report.verdict {
            GuardedVerdict::Terminates => true,
            GuardedVerdict::Diverges(_) => false,
            GuardedVerdict::Unknown => continue,
        };
        // Long chase on the critical instance.
        let mut p2 = p.clone();
        let crit = CriticalInstance::build(&mut p2);
        let run = chase(
            &p2,
            ChaseVariant::SemiOblivious,
            crit.instance,
            &Budget { max_applications: 1_800, max_atoms: 20_000, ..Budget::unlimited() },
        );
        match claim {
            true => assert_eq!(
                run.outcome,
                StopReason::Saturated,
                "seed {seed}: claimed terminating but chase kept going"
            ),
            false => assert_eq!(
                run.outcome,
                StopReason::Applications,
                "seed {seed}: claimed diverging but chase saturated"
            ),
        }
    }
}

/// Guarded population: the decider's saturation stats never exceed its
/// fuel, and unknown verdicts only occur at the fuel boundary.
#[test]
fn guarded_decider_respects_fuel_and_reports_unknown_honestly() {
    let cfg = RandomConfig::default();
    for seed in 0..60 {
        let p = random_guarded(&cfg, 99_000 + seed);
        let mut gcfg = GuardedConfig::new(ChaseVariant::SemiOblivious);
        gcfg.max_applications = 300;
        gcfg.max_atoms = 5_000;
        let report = decide_guarded(&p, gcfg).unwrap();
        if matches!(report.verdict, GuardedVerdict::Unknown) {
            assert!(
                report.stats.applications >= 300 || report.stats.atoms_added >= 4_000,
                "seed {seed}: unknown without exhausting fuel"
            );
        }
    }
}

/// The portfolio never answers `Some` wrongly on the corpus regardless of
/// dispatch path; also exercise the restricted verdicts.
#[test]
fn restricted_verdicts_on_corpus_are_sound() {
    for lp in corpus() {
        let v = restricted_verdict(&lp.program);
        if v.terminates == Some(true) {
            // A terminating restricted chase claim must hold on the
            // program's own facts (when present) and the critical instance.
            let mut p = lp.program.clone();
            let crit = CriticalInstance::build(&mut p);
            let run = chase(
                &p,
                ChaseVariant::Restricted,
                crit.instance,
                &Budget { max_applications: 5_000, max_atoms: 50_000, ..Budget::unlimited() },
            );
            assert_eq!(run.outcome, StopReason::Saturated, "{}", lp.name);
        }
    }
}
