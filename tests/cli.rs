//! Integration tests for the `chasekit` command-line binary.

use std::io::Write as _;
use std::process::Command;

fn write_rules(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("chasekit-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

fn run(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_chasekit"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn classify_reports_class_and_per_rule_details() {
    let path = write_rules(
        "classify.rules",
        "person(X) -> hasFather(X, Y), person(Y). person(bob).",
    );
    let (stdout, _, code) = run(&["classify", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("class: simple-linear"));
    assert!(stdout.contains("multi-head"));
    assert!(stdout.contains("facts: 1"));
}

#[test]
fn decide_answers_for_both_variants() {
    let path = write_rules("decide.rules", "r(X, Y) -> r(X, Z).");
    let (stdout, _, code) = run(&["decide", path.to_str().unwrap(), "--variant", "so"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("TERMINATES"), "{stdout}");
    let (stdout, _, _) = run(&["decide", path.to_str().unwrap(), "--variant", "o"]);
    assert!(stdout.contains("DIVERGES"), "{stdout}");
}

#[test]
fn decide_restricted_uses_the_future_work_procedure() {
    let path = write_rules("restricted.rules", "p(X, Y) -> p(Y, Z).");
    let (stdout, _, code) =
        run(&["decide", path.to_str().unwrap(), "--variant", "restricted"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("Some(false)"), "{stdout}");
}

#[test]
fn chase_prints_the_result_instance() {
    let path = write_rules("chase.rules", "e(a, b). e(X, Y) -> t(Y, X).");
    let (stdout, _, code) = run(&["chase", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("saturated"));
    assert!(stdout.contains("t(b, a)"));
}

#[test]
fn chase_without_facts_uses_the_critical_instance() {
    let path = write_rules("crit-chase.rules", "p(X) -> q(X).");
    let (stdout, _, code) = run(&["chase", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("critical instance"));
    assert!(stdout.contains("q(\u{22c6}critical)"));
}

#[test]
fn conditions_prints_the_whole_ladder() {
    let path = write_rules("conds.rules", "p(X, Y) -> q(X, Y).");
    let (stdout, _, code) = run(&["conditions", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    for line in ["weak acyclicity", "rich acyclicity", "joint acyclicity", "aGRD", "MFA"] {
        assert!(stdout.contains(line), "missing {line} in {stdout}");
    }
    assert!(!stdout.contains("false"), "copy rule satisfies every condition: {stdout}");
}

#[test]
fn critical_lists_the_combinations() {
    let path = write_rules("crit.rules", "e(X, a) -> e(a, X).");
    let (stdout, _, code) = run(&["critical", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    // Constants {a, ⋆}: 4 combinations for the binary predicate.
    assert_eq!(stdout.lines().filter(|l| l.starts_with("e(")).count(), 4);
    let (std_out, _, _) = run(&["critical", path.to_str().unwrap(), "--standard"]);
    // Constants {a, 0, 1, ⋆}: 16 combinations plus 0(0) and 1(1).
    assert_eq!(std_out.lines().filter(|l| l.starts_with("e(")).count(), 16);
}

#[test]
fn parse_errors_are_reported_with_location() {
    let path = write_rules("broken.rules", "p(X -> q(X).");
    let (_, stderr, code) = run(&["decide", path.to_str().unwrap()]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("parse error"), "{stderr}");
}

#[test]
fn missing_file_and_bad_usage_fail_cleanly() {
    let (_, stderr, code) = run(&["decide", "/nonexistent/never.rules"]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("cannot read"));
    let (_, stderr, code) = run(&["frobnicate"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage"));
}

#[test]
fn explain_shows_a_dangerous_cycle_for_linear_sets() {
    let path = write_rules("explain-linear.rules", "p(X, Y) -> p(Y, Z).");
    let (stdout, _, code) = run(&["explain", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("dangerous reachable cycle"), "{stdout}");
    assert!(stdout.contains("DIVERGES"), "{stdout}");
}

#[test]
fn explain_shows_a_pumping_certificate_for_guarded_sets() {
    let path = write_rules(
        "explain-guarded.rules",
        "r(X, Y), p(Y) -> r(Y, Z), p(Z).",
    );
    let (stdout, _, code) = run(&["explain", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("pumping certificate"), "{stdout}");
    assert!(stdout.contains("ancestor"), "{stdout}");
}

#[test]
fn explain_reports_termination_cleanly() {
    let path = write_rules("explain-term.rules", "p(X, Y) -> q(X, Y).");
    let (stdout, _, code) = run(&["explain", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("terminates on all databases"), "{stdout}");
}

#[test]
fn chase_writes_a_dot_file() {
    let path = write_rules("dot.rules", "p(a). p(X) -> q(X, Y).");
    let dot_path = std::env::temp_dir().join("chasekit-cli-tests").join("out.dot");
    let (stdout, _, code) = run(&[
        "chase",
        path.to_str().unwrap(),
        "--dot",
        dot_path.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("derivation DAG written"));
    let dot = std::fs::read_to_string(&dot_path).unwrap();
    assert!(dot.starts_with("digraph chase {"));
    assert!(dot.contains("q("));
}

#[test]
fn bad_variant_is_named_in_the_error() {
    let path = write_rules("bad-variant.rules", "p(X) -> q(X).");
    let (_, stderr, code) =
        run(&["chase", path.to_str().unwrap(), "--variant", "sideways"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--variant"), "{stderr}");
    assert!(stderr.contains("sideways"), "{stderr}");
}

#[test]
fn non_numeric_steps_is_named_in_the_error() {
    let path = write_rules("bad-steps.rules", "p(X) -> q(X).");
    let (_, stderr, code) = run(&["chase", path.to_str().unwrap(), "--steps", "many"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--steps"), "{stderr}");
    assert!(stderr.contains("many"), "{stderr}");
}

#[test]
fn flag_missing_its_value_is_named_in_the_error() {
    let path = write_rules("no-value.rules", "p(X) -> q(X).");
    let (_, stderr, code) = run(&["chase", path.to_str().unwrap(), "--timeout-ms"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--timeout-ms"), "{stderr}");
    assert!(stderr.contains("requires a value"), "{stderr}");
}

#[test]
fn unknown_command_is_named_in_the_error() {
    let (_, stderr, code) = run(&["frobnicate", "whatever.rules"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("frobnicate"), "{stderr}");
}

#[test]
fn exhausted_step_budget_exits_10() {
    let path = write_rules("diverge.rules", "p(a, b). p(X, Y) -> p(Y, Z).");
    let (stdout, _, code) = run(&["chase", path.to_str().unwrap(), "--steps", "25"]);
    assert_eq!(code, Some(10), "{stdout}");
    assert!(stdout.contains("applications"), "{stdout}");
}

#[test]
fn wall_clock_deadline_exits_12() {
    let path = write_rules("timeout.rules", "p(a, b). p(X, Y) -> p(Y, Z).");
    let (stdout, _, code) = run(&[
        "chase",
        path.to_str().unwrap(),
        "--steps",
        "100000000",
        "--timeout-ms",
        "30",
    ]);
    assert_eq!(code, Some(12), "{stdout}");
    assert!(stdout.contains("wall-clock"), "{stdout}");
}

#[test]
fn memory_ceiling_exits_13() {
    let path = write_rules("mem.rules", "p(a, b). p(X, Y) -> p(Y, Z).");
    let (stdout, _, code) = run(&[
        "chase",
        path.to_str().unwrap(),
        "--steps",
        "100000000",
        "--max-atoms-mem",
        "20000",
    ]);
    assert_eq!(code, Some(13), "{stdout}");
    assert!(stdout.contains("memory"), "{stdout}");
}

#[test]
fn threaded_chase_output_is_identical_to_the_sequential_default() {
    let path = write_rules(
        "threads-eq.rules",
        "e(a, b). e(X, Y) -> e(Y, Z). e(X, Y) -> f(Y, W). f(X, Y) -> e(Y, Z).",
    );
    let (seq_out, _, seq_code) = run(&["chase", path.to_str().unwrap(), "--steps", "120"]);
    assert_eq!(seq_code, Some(10), "{seq_out}");
    for threads in ["2", "4", "8"] {
        let (par_out, _, par_code) = run(&[
            "chase",
            path.to_str().unwrap(),
            "--steps",
            "120",
            "--threads",
            threads,
        ]);
        assert_eq!(par_code, seq_code, "--threads {threads}");
        // The whole printed report — outcome line, counters, and every
        // atom with its null numbering — must match byte for byte.
        assert_eq!(par_out, seq_out, "--threads {threads}");
    }
}

#[test]
fn threads_zero_auto_detects_and_garbage_is_a_named_error() {
    let path = write_rules(
        "threads-auto.rules",
        "e(a, b). e(X, Y) -> e(Y, Z). e(X, Y) -> f(Y, W). f(X, Y) -> e(Y, Z).",
    );
    // `--threads 0` means one worker per available core — the run must
    // succeed and stay bit-identical to the sequential default.
    let (seq_out, _, seq_code) = run(&["chase", path.to_str().unwrap(), "--steps", "120"]);
    let (auto_out, _, auto_code) =
        run(&["chase", path.to_str().unwrap(), "--steps", "120", "--threads", "0"]);
    assert_eq!(auto_code, seq_code, "{auto_out}");
    assert_eq!(auto_out, seq_out);
    // Garbage values still produce a named argument error, not a panic.
    let (_, stderr, code) = run(&["chase", path.to_str().unwrap(), "--threads", "lots"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("`--threads`"), "{stderr}");
    assert!(stderr.contains("`lots`"), "{stderr}");
    let (_, stderr, code) = run(&["serve", "--store", "/tmp/never", "--workers", "-3"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("`--workers`"), "{stderr}");
}

#[test]
fn threaded_chase_keeps_the_exit_code_contract() {
    let diverging = write_rules("threads-codes.rules", "p(a, b). p(X, Y) -> p(Y, Z).");
    let saturating = write_rules("threads-sat.rules", "e(a, b). e(X, Y) -> t(Y, X).");

    let (stdout, _, code) =
        run(&["chase", saturating.to_str().unwrap(), "--threads", "4"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("saturated"), "{stdout}");

    let (stdout, _, code) =
        run(&["chase", diverging.to_str().unwrap(), "--steps", "25", "--threads", "4"]);
    assert_eq!(code, Some(10), "{stdout}");

    let (stdout, _, code) = run(&[
        "chase",
        diverging.to_str().unwrap(),
        "--steps",
        "100000000",
        "--timeout-ms",
        "30",
        "--threads",
        "4",
    ]);
    assert_eq!(code, Some(12), "{stdout}");

    let (stdout, _, code) = run(&[
        "chase",
        diverging.to_str().unwrap(),
        "--steps",
        "100000000",
        "--max-atoms-mem",
        "20000",
        "--threads",
        "4",
    ]);
    assert_eq!(code, Some(13), "{stdout}");
}

#[test]
fn checkpoint_written_sequentially_resumes_under_threads_and_vice_versa() {
    let rules = "p(a, b). p(X, Y) -> p(Y, Z).";
    let path = write_rules("ckpt-threads.rules", rules);
    let ckpt = std::env::temp_dir().join("chasekit-cli-tests").join("threads.ckpt");
    let _ = std::fs::remove_file(&ckpt);

    // Sequential leg writes the checkpoint; threaded leg resumes it.
    let (_, _, code) = run(&[
        "chase",
        path.to_str().unwrap(),
        "--steps",
        "30",
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(10));
    let (resumed_out, _, code) = run(&[
        "chase",
        path.to_str().unwrap(),
        "--steps",
        "60",
        "--threads",
        "4",
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(10), "{resumed_out}");
    assert!(resumed_out.contains("resuming from checkpoint"), "{resumed_out}");

    // And back: the threaded leg's checkpoint resumes sequentially.
    let (final_out, _, code) = run(&[
        "chase",
        path.to_str().unwrap(),
        "--steps",
        "90",
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(10), "{final_out}");

    // The three-leg relay lands exactly where a straight 90-step run does.
    let (straight_out, _, _) = run(&["chase", path.to_str().unwrap(), "--steps", "90"]);
    let atoms = |s: &str| -> Vec<String> {
        s.lines().filter(|l| l.starts_with("p(")).map(|l| l.to_string()).collect()
    };
    assert_eq!(atoms(&final_out), atoms(&straight_out));
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn checkpointed_run_resumes_and_matches_a_straight_run() {
    let rules = "p(a, b). p(X, Y) -> p(Y, Z).";
    let path = write_rules("ckpt.rules", rules);
    let ckpt = std::env::temp_dir().join("chasekit-cli-tests").join("run.ckpt");
    let _ = std::fs::remove_file(&ckpt);

    // Interrupted run: 30 steps, parked in the checkpoint.
    let (stdout, _, code) = run(&[
        "chase",
        path.to_str().unwrap(),
        "--steps",
        "30",
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(10), "{stdout}");
    assert!(stdout.contains("checkpoint written"), "{stdout}");
    assert!(ckpt.exists());

    // Second leg: another 30 steps on top of the checkpoint = 60 total.
    let (resumed_out, _, code) = run(&[
        "chase",
        path.to_str().unwrap(),
        "--steps",
        "60",
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(10), "{resumed_out}");
    assert!(resumed_out.contains("resuming from checkpoint"), "{resumed_out}");

    // Straight-through run of 60 steps, no checkpointing.
    let (straight_out, _, _) = run(&["chase", path.to_str().unwrap(), "--steps", "60"]);

    // Identical instances: compare the printed atom lines.
    let atoms = |s: &str| -> Vec<String> {
        s.lines().filter(|l| l.starts_with("p(")).map(|l| l.to_string()).collect()
    };
    assert_eq!(atoms(&resumed_out), atoms(&straight_out));
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn saturating_run_removes_its_checkpoint() {
    let path = write_rules("ckpt-sat.rules", "e(a, b). e(X, Y) -> t(Y, X).");
    let ckpt = std::env::temp_dir().join("chasekit-cli-tests").join("sat.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    let (stdout, _, code) = run(&[
        "chase",
        path.to_str().unwrap(),
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(!ckpt.exists(), "saturated run must not leave a checkpoint behind");
}

#[test]
fn checkpoint_with_dot_is_rejected_up_front() {
    let path = write_rules("ckpt-dot.rules", "p(X) -> q(X).");
    let (_, stderr, code) = run(&[
        "chase",
        path.to_str().unwrap(),
        "--checkpoint",
        "/tmp/x.ckpt",
        "--dot",
        "/tmp/x.dot",
    ]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--checkpoint"), "{stderr}");
}

#[test]
fn checkpoint_from_a_different_program_is_refused() {
    let rules_a = write_rules("ckpt-a.rules", "p(a, b). p(X, Y) -> p(Y, Z).");
    let rules_b = write_rules("ckpt-b.rules", "p(a, b). p(X, Y) -> p(X, Z).");
    let ckpt = std::env::temp_dir().join("chasekit-cli-tests").join("mismatch.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    let (_, _, code) = run(&[
        "chase",
        rules_a.to_str().unwrap(),
        "--steps",
        "10",
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(10));
    let (_, stderr, code) = run(&[
        "chase",
        rules_b.to_str().unwrap(),
        "--steps",
        "10",
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stderr.contains("different program"), "{stderr}");
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn trace_flag_without_a_path_is_named_in_the_error() {
    let path = write_rules("trace-noval.rules", "p(X) -> q(X).");
    let (_, stderr, code) = run(&["chase", path.to_str().unwrap(), "--trace"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--trace"), "{stderr}");
    assert!(stderr.contains("requires a value"), "{stderr}");
}

#[test]
fn progress_zero_and_non_numeric_are_named_in_the_error() {
    let path = write_rules("progress-bad.rules", "p(X) -> q(X).");
    let (_, stderr, code) = run(&["chase", path.to_str().unwrap(), "--progress", "0"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--progress"), "{stderr}");
    assert!(stderr.contains("0"), "{stderr}");
    let (_, stderr, code) = run(&["chase", path.to_str().unwrap(), "--progress", "often"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--progress"), "{stderr}");
    assert!(stderr.contains("often"), "{stderr}");
}

#[test]
fn unwritable_trace_and_metrics_files_exit_1() {
    let path = write_rules("trace-unwritable.rules", "p(a). p(X) -> q(X).");
    let (_, stderr, code) = run(&[
        "chase",
        path.to_str().unwrap(),
        "--trace",
        "/nonexistent-dir/out.jsonl",
    ]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stderr.contains("cannot create trace file"), "{stderr}");
    let (_, stderr, code) = run(&[
        "chase",
        path.to_str().unwrap(),
        "--metrics",
        "/nonexistent-dir/metrics.json",
    ]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stderr.contains("cannot create metrics file"), "{stderr}");
}

#[test]
fn traced_chase_output_is_identical_to_untraced() {
    let path = write_rules(
        "trace-free.rules",
        "e(a, b). e(X, Y) -> e(Y, Z). e(X, Y) -> f(Y, W). f(X, Y) -> e(Y, Z).",
    );
    let trace = std::env::temp_dir().join("chasekit-cli-tests").join("free.jsonl");
    let (plain_out, _, plain_code) =
        run(&["chase", path.to_str().unwrap(), "--steps", "80"]);
    for threads in ["1", "4"] {
        let (traced_out, _, traced_code) = run(&[
            "chase",
            path.to_str().unwrap(),
            "--steps",
            "80",
            "--threads",
            threads,
            "--trace",
            trace.to_str().unwrap(),
        ]);
        assert_eq!(traced_code, plain_code, "--threads {threads}");
        // Tracing must not perturb the run: the whole printed report —
        // outcome counters and every atom — matches byte for byte.
        assert_eq!(traced_out, plain_out, "--threads {threads}");
        let text = std::fs::read_to_string(&trace).unwrap();
        for line in text.lines() {
            chasekit::engine::validate_trace_line(line)
                .unwrap_or_else(|e| panic!("--threads {threads}: `{line}`: {e}"));
        }
    }
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn metrics_file_reconciles_with_the_printed_outcome() {
    let path = write_rules("metrics.rules", "p(a, b). p(X, Y) -> p(Y, Z).");
    let metrics = std::env::temp_dir().join("chasekit-cli-tests").join("metrics.json");
    let (stdout, _, code) = run(&[
        "chase",
        path.to_str().unwrap(),
        "--steps",
        "25",
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(10), "{stdout}");
    assert!(stdout.contains("metrics written"), "{stdout}");
    let json = std::fs::read_to_string(&metrics).unwrap();
    assert!(json.contains("\"chase.applications\": 25"), "{json}");
    assert!(json.contains("\"stops.applications\": 1"), "{json}");
    assert!(json.contains("\"per_rule\""), "{json}");
    assert!(json.contains("p(X, Y) -> p(Y, Z)."), "{json}");
    let _ = std::fs::remove_file(&metrics);
}

/// The ISSUE's acceptance bar for `--trace` + `--checkpoint`: the traces
/// of an interrupted run and its resumed leg, concatenated, carry exactly
/// the core events (with the same contiguous sequence numbers) of one
/// straight run. Lifecycle records differ legitimately — the interrupted
/// leg has a mid-stream `stop` and `ckpt-write`, the resumed leg a
/// `ckpt-resume` — so the comparison filters to core events.
#[test]
fn trace_with_checkpoint_resume_is_contiguous_with_a_straight_run() {
    let rules = "p(a, b). p(X, Y) -> p(Y, Z).";
    let path = write_rules("trace-ckpt.rules", rules);
    let dir = std::env::temp_dir().join("chasekit-cli-tests");
    let ckpt = dir.join("trace.ckpt");
    let t_straight = dir.join("straight.jsonl");
    let t_leg1 = dir.join("leg1.jsonl");
    let t_leg2 = dir.join("leg2.jsonl");
    let _ = std::fs::remove_file(&ckpt);

    let (_, _, code) = run(&[
        "chase",
        path.to_str().unwrap(),
        "--steps",
        "60",
        "--trace",
        t_straight.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(10));

    let (_, _, code) = run(&[
        "chase",
        path.to_str().unwrap(),
        "--steps",
        "30",
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--trace",
        t_leg1.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(10));
    let (stdout, _, code) = run(&[
        "chase",
        path.to_str().unwrap(),
        "--steps",
        "60",
        "--threads",
        "4",
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--trace",
        t_leg2.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(10), "{stdout}");
    assert!(stdout.contains("resuming from checkpoint"), "{stdout}");

    let core_lines = |path: &std::path::Path| -> Vec<String> {
        std::fs::read_to_string(path)
            .unwrap()
            .lines()
            .filter(|line| {
                let kind = chasekit::engine::validate_trace_line(line)
                    .unwrap_or_else(|e| panic!("`{line}`: {e}"));
                !matches!(kind, "stop" | "ckpt-write" | "ckpt-resume")
            })
            .map(str::to_string)
            .collect()
    };
    let mut relay = core_lines(&t_leg1);
    relay.extend(core_lines(&t_leg2));
    assert_eq!(relay, core_lines(&t_straight));

    // The lifecycle records are present where expected.
    let leg1 = std::fs::read_to_string(&t_leg1).unwrap();
    assert!(leg1.contains("\"ev\":\"ckpt-write\""), "{leg1}");
    let leg2 = std::fs::read_to_string(&t_leg2).unwrap();
    assert!(leg2.starts_with("{\"seq\":"), "{leg2}");
    assert!(leg2.contains("\"ev\":\"ckpt-resume\""), "{leg2}");

    for f in [&ckpt, &t_straight, &t_leg1, &t_leg2] {
        let _ = std::fs::remove_file(f);
    }
}

fn run_env(args: &[&str], env: &[(&str, &str)]) -> (String, String, Option<i32>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_chasekit"));
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn journal_flags_are_validated_up_front() {
    let path = write_rules("journal-flags.rules", "p(a, b). p(X, Y) -> p(Y, Z).");
    let rules = path.to_str().unwrap();
    // --journal needs --checkpoint.
    let (_, stderr, code) = run(&["chase", rules, "--journal", "/tmp/x.journal"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--journal"), "{stderr}");
    assert!(stderr.contains("--checkpoint"), "{stderr}");
    // --checkpoint-every needs --checkpoint and a positive count.
    let (_, stderr, code) = run(&["chase", rules, "--checkpoint-every", "50"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--checkpoint-every"), "{stderr}");
    let (_, stderr, code) = run(&[
        "chase", rules, "--checkpoint", "/tmp/x.ckpt", "--checkpoint-every", "0",
    ]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--checkpoint-every"), "{stderr}");
    assert!(stderr.contains("0"), "{stderr}");
    // --recover needs both files.
    let (_, stderr, code) = run(&["chase", rules, "--recover"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--recover"), "{stderr}");
    let (_, stderr, code) =
        run(&["chase", rules, "--checkpoint", "/tmp/x.ckpt", "--recover"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--recover"), "{stderr}");
    assert!(stderr.contains("--journal"), "{stderr}");
}

#[test]
fn malformed_failpoint_spec_is_named_in_the_error() {
    let path = write_rules("failpoint-bad.rules", "p(X) -> q(X).");
    let (_, stderr, code) = run_env(
        &["chase", path.to_str().unwrap()],
        &[("CHASEKIT_FAILPOINTS", "no-such-point=error")],
    );
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("CHASEKIT_FAILPOINTS"), "{stderr}");
    assert!(stderr.contains("no-such-point"), "{stderr}");
}

#[test]
fn journal_write_failure_exits_15_with_the_state_preserved() {
    let path = write_rules("journal-io.rules", "p(a, b). p(X, Y) -> p(Y, Z).");
    let dir = std::env::temp_dir().join("chasekit-cli-tests");
    let ckpt = dir.join("io15.ckpt");
    let journal = dir.join("io15.journal");
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&journal);
    let (stdout, stderr, code) = run_env(
        &[
            "chase",
            path.to_str().unwrap(),
            "--steps",
            "50",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
        ],
        &[("CHASEKIT_FAILPOINTS", "journal.append=error@5")],
    );
    assert_eq!(code, Some(15), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stderr.contains("journal write failed"), "{stderr}");
    // The in-memory state is still sound, so the run parks a checkpoint.
    assert!(ckpt.exists(), "an Io stop must still park the state");
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn recovery_reports_replayed_records_and_exits_3() {
    let path = write_rules("recover-report.rules", "p(a, b). p(X, Y) -> p(Y, Z).");
    let rules = path.to_str().unwrap();
    let dir = std::env::temp_dir().join("chasekit-cli-tests");
    let ckpt = dir.join("report.ckpt");
    let journal = dir.join("report.journal");
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&journal);

    // Simulated kill right before the first periodic snapshot publishes:
    // the journal holds 20 records, the checkpoint does not exist.
    let (_, _, code) = run_env(
        &[
            "chase", rules, "--steps", "60",
            "--checkpoint", ckpt.to_str().unwrap(),
            "--journal", journal.to_str().unwrap(),
            "--checkpoint-every", "20",
        ],
        &[("CHASEKIT_FAILPOINTS", "snapshot.rename=exit:9@1")],
    );
    assert_eq!(code, Some(9));
    assert!(journal.exists() && !ckpt.exists());

    // A journaled restart refuses until the records are replayed.
    let (_, stderr, code) = run(&[
        "chase", rules, "--steps", "60",
        "--checkpoint", ckpt.to_str().unwrap(),
        "--journal", journal.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stderr.contains("--recover"), "{stderr}");

    let (stdout, stderr, code) = run(&[
        "chase", rules, "--steps", "60",
        "--checkpoint", ckpt.to_str().unwrap(),
        "--journal", journal.to_str().unwrap(),
        "--recover",
    ]);
    assert_eq!(code, Some(3), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("no snapshot found"), "{stdout}");
    assert!(stdout.contains("20 journal records replayed"), "{stdout}");
    assert!(stdout.contains("bytes of torn tail truncated"), "{stdout}");
    assert!(stdout.contains("recovered state: 20 applications"), "{stdout}");
    assert!(ckpt.exists(), "recovery must publish the recovered state");

    // The published state continues like any checkpoint.
    let (stdout, _, code) = run(&[
        "chase", rules, "--steps", "60",
        "--checkpoint", ckpt.to_str().unwrap(),
        "--journal", journal.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(10), "{stdout}");
    assert!(stdout.contains("resuming from checkpoint"), "{stdout}");
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn saturating_journaled_run_removes_both_files() {
    let path = write_rules("journal-sat.rules", "e(a, b). e(X, Y) -> t(Y, X).");
    let dir = std::env::temp_dir().join("chasekit-cli-tests");
    let ckpt = dir.join("jsat.ckpt");
    let journal = dir.join("jsat.journal");
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&journal);
    let (stdout, _, code) = run(&[
        "chase",
        path.to_str().unwrap(),
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--journal",
        journal.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(!ckpt.exists(), "saturation leaves no checkpoint");
    assert!(!journal.exists(), "saturation leaves no journal");
}

#[test]
fn conditions_reports_checker_work_counts() {
    let path = write_rules("conds-work.rules", "p(X, Y) -> p(Y, Z).");
    let (stdout, _, code) = run(&["conditions", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    // WA graph of Example 2: 2 nodes, 2 edges, 1 special.
    assert!(stdout.contains("[2 nodes, 2 edges, 1 special]"), "{stdout}");
    // RA (extended) graph adds one special edge.
    assert!(stdout.contains("[2 nodes, 3 edges, 2 special]"), "{stdout}");
    // MFA reports how far the critical-instance chase ran.
    assert!(stdout.contains("applications,"), "{stdout}");
}

#[test]
fn serve_and_flush_flags_are_validated_up_front() {
    let path = write_rules("serve-flags.rules", "p(a, b). p(X, Y) -> p(Y, Z).");
    let rules = path.to_str().unwrap();
    // serve needs a store.
    let (_, stderr, code) = run(&["serve"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("--store"), "{stderr}");
    // ... and a store means serve.
    let (_, stderr, code) = run(&["chase", rules, "--store", "/tmp/nope"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("--store"), "{stderr}");
    // Group commit on a chase run needs a journal to group.
    let (_, stderr, code) = run(&["chase", rules, "--journal-flush-every", "4"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("--journal-flush-every"), "{stderr}");
    assert!(stderr.contains("--journal"), "{stderr}");
    // Zero is not a batch size or a queue depth (`--workers 0` is valid:
    // it means auto-detect, covered by the threads-auto test).
    for flag in ["--journal-flush-every", "--queue"] {
        let (_, stderr, code) = run(&["serve", "--store", "/tmp/nope", flag, "0"]);
        assert_eq!(code, Some(2), "{flag}: {stderr}");
        assert!(stderr.contains(flag), "{flag}: {stderr}");
    }
}

#[test]
fn final_checkpoint_write_failure_exits_15_with_a_named_error() {
    let path = write_rules("final-io.rules", "p(a, b). p(X, Y) -> p(Y, Z).");
    let dir = std::env::temp_dir().join("chasekit-cli-tests");
    let ckpt = dir.join("final-io.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    // No periodic legs, so the only snapshot write is the final
    // budget-exhausted publication — and it fails.
    let (stdout, stderr, code) = run_env(
        &[
            "chase",
            path.to_str().unwrap(),
            "--steps",
            "30",
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ],
        &[("CHASEKIT_FAILPOINTS", "snapshot.write=error@1")],
    );
    assert_eq!(code, Some(15), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stderr.contains("cannot write checkpoint"), "{stderr}");
    assert!(stderr.contains("snapshot.write"), "{stderr}");
    assert!(!ckpt.exists(), "a failed atomic publication leaves no checkpoint");
}

#[test]
fn recovery_publication_failure_exits_15() {
    let path = write_rules("recover-io.rules", "p(a, b). p(X, Y) -> p(Y, Z).");
    let rules = path.to_str().unwrap();
    let dir = std::env::temp_dir().join("chasekit-cli-tests");
    let ckpt = dir.join("recover-io.ckpt");
    let journal = dir.join("recover-io.journal");
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&journal);
    // Crash a journaled run, then make the recovery's snapshot rewrite fail:
    // recovery must surface the durability failure, not claim success.
    let (_, _, code) = run_env(
        &[
            "chase", rules, "--steps", "60",
            "--checkpoint", ckpt.to_str().unwrap(),
            "--journal", journal.to_str().unwrap(),
            "--checkpoint-every", "20",
        ],
        &[("CHASEKIT_FAILPOINTS", "snapshot.rename=exit:9@1")],
    );
    assert_eq!(code, Some(9));
    let (stdout, stderr, code) = run_env(
        &[
            "chase", rules, "--steps", "60",
            "--checkpoint", ckpt.to_str().unwrap(),
            "--journal", journal.to_str().unwrap(),
            "--recover",
        ],
        &[("CHASEKIT_FAILPOINTS", "snapshot.write=error@1")],
    );
    assert_eq!(code, Some(15), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stderr.contains("snapshot.write"), "{stderr}");
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&journal);
}
