//! Integration tests for the `chasekit` command-line binary.

use std::io::Write as _;
use std::process::Command;

fn write_rules(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("chasekit-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

fn run(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_chasekit"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn classify_reports_class_and_per_rule_details() {
    let path = write_rules(
        "classify.rules",
        "person(X) -> hasFather(X, Y), person(Y). person(bob).",
    );
    let (stdout, _, code) = run(&["classify", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("class: simple-linear"));
    assert!(stdout.contains("multi-head"));
    assert!(stdout.contains("facts: 1"));
}

#[test]
fn decide_answers_for_both_variants() {
    let path = write_rules("decide.rules", "r(X, Y) -> r(X, Z).");
    let (stdout, _, code) = run(&["decide", path.to_str().unwrap(), "--variant", "so"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("TERMINATES"), "{stdout}");
    let (stdout, _, _) = run(&["decide", path.to_str().unwrap(), "--variant", "o"]);
    assert!(stdout.contains("DIVERGES"), "{stdout}");
}

#[test]
fn decide_restricted_uses_the_future_work_procedure() {
    let path = write_rules("restricted.rules", "p(X, Y) -> p(Y, Z).");
    let (stdout, _, code) =
        run(&["decide", path.to_str().unwrap(), "--variant", "restricted"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("Some(false)"), "{stdout}");
}

#[test]
fn chase_prints_the_result_instance() {
    let path = write_rules("chase.rules", "e(a, b). e(X, Y) -> t(Y, X).");
    let (stdout, _, code) = run(&["chase", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("Saturated"));
    assert!(stdout.contains("t(b, a)"));
}

#[test]
fn chase_without_facts_uses_the_critical_instance() {
    let path = write_rules("crit-chase.rules", "p(X) -> q(X).");
    let (stdout, _, code) = run(&["chase", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("critical instance"));
    assert!(stdout.contains("q(\u{22c6}critical)"));
}

#[test]
fn conditions_prints_the_whole_ladder() {
    let path = write_rules("conds.rules", "p(X, Y) -> q(X, Y).");
    let (stdout, _, code) = run(&["conditions", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    for line in ["weak acyclicity", "rich acyclicity", "joint acyclicity", "aGRD", "MFA"] {
        assert!(stdout.contains(line), "missing {line} in {stdout}");
    }
    assert!(!stdout.contains("false"), "copy rule satisfies every condition: {stdout}");
}

#[test]
fn critical_lists_the_combinations() {
    let path = write_rules("crit.rules", "e(X, a) -> e(a, X).");
    let (stdout, _, code) = run(&["critical", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    // Constants {a, ⋆}: 4 combinations for the binary predicate.
    assert_eq!(stdout.lines().filter(|l| l.starts_with("e(")).count(), 4);
    let (std_out, _, _) = run(&["critical", path.to_str().unwrap(), "--standard"]);
    // Constants {a, 0, 1, ⋆}: 16 combinations plus 0(0) and 1(1).
    assert_eq!(std_out.lines().filter(|l| l.starts_with("e(")).count(), 16);
}

#[test]
fn parse_errors_are_reported_with_location() {
    let path = write_rules("broken.rules", "p(X -> q(X).");
    let (_, stderr, code) = run(&["decide", path.to_str().unwrap()]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("parse error"), "{stderr}");
}

#[test]
fn missing_file_and_bad_usage_fail_cleanly() {
    let (_, stderr, code) = run(&["decide", "/nonexistent/never.rules"]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("cannot read"));
    let (_, stderr, code) = run(&["frobnicate"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage"));
}

#[test]
fn explain_shows_a_dangerous_cycle_for_linear_sets() {
    let path = write_rules("explain-linear.rules", "p(X, Y) -> p(Y, Z).");
    let (stdout, _, code) = run(&["explain", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("dangerous reachable cycle"), "{stdout}");
    assert!(stdout.contains("DIVERGES"), "{stdout}");
}

#[test]
fn explain_shows_a_pumping_certificate_for_guarded_sets() {
    let path = write_rules(
        "explain-guarded.rules",
        "r(X, Y), p(Y) -> r(Y, Z), p(Z).",
    );
    let (stdout, _, code) = run(&["explain", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("pumping certificate"), "{stdout}");
    assert!(stdout.contains("ancestor"), "{stdout}");
}

#[test]
fn explain_reports_termination_cleanly() {
    let path = write_rules("explain-term.rules", "p(X, Y) -> q(X, Y).");
    let (stdout, _, code) = run(&["explain", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("terminates on all databases"), "{stdout}");
}

#[test]
fn chase_writes_a_dot_file() {
    let path = write_rules("dot.rules", "p(a). p(X) -> q(X, Y).");
    let dot_path = std::env::temp_dir().join("chasekit-cli-tests").join("out.dot");
    let (stdout, _, code) = run(&[
        "chase",
        path.to_str().unwrap(),
        "--dot",
        dot_path.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("derivation DAG written"));
    let dot = std::fs::read_to_string(&dot_path).unwrap();
    assert!(dot.starts_with("digraph chase {"));
    assert!(dot.contains("q("));
}
