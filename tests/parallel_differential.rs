//! Differential testing of the parallel-round chase against the sequential
//! oracle.
//!
//! The parallel driver promises **bit-identical** runs at every thread
//! count: same atoms with the same ids, same null numbering, same stop
//! reason, same queue and identity set, same statistics, same derivation
//! edges. The whole-state comparison here is the checkpoint text format —
//! it serializes everything the chase can observe, so string equality is
//! bit-identity of the run. Inputs: the paper's worked examples, every
//! datagen family (on its facts, or the critical instance when it has
//! none), and 100 proptest-generated random programs.

use proptest::prelude::*;

use chasekit::core::hom_equivalent;
use chasekit::engine::{ChaseConfig, ChaseMachine};
use chasekit::prelude::*;

const VARIANTS: [ChaseVariant; 3] =
    [ChaseVariant::Oblivious, ChaseVariant::SemiOblivious, ChaseVariant::Restricted];

/// The chase's initial instance for a program: its facts, or the critical
/// instance when it carries none (mutates the program to intern the fresh
/// constant, so build it once and share the result).
fn seed(program: &mut Program) -> Instance {
    if program.facts().is_empty() {
        CriticalInstance::build(program).instance
    } else {
        Instance::from_atoms(program.facts().iter().cloned())
    }
}

fn state_text(m: &ChaseMachine<'_>) -> String {
    m.snapshot().to_text().expect("untracked runs serialize")
}

/// Runs `variant` sequentially and at 2, 4, and 8 threads; asserts every
/// parallel run is bit-identical to the sequential one (stop reason and
/// full checkpointed state).
fn assert_bit_identical(
    label: &str,
    program: &Program,
    initial: &Instance,
    variant: ChaseVariant,
    budget: &Budget,
) {
    let cfg = ChaseConfig::of(variant);
    let mut seq = ChaseMachine::new(program, cfg, initial.clone());
    let stop = seq.run(budget);
    let text = state_text(&seq);
    for threads in [2usize, 4, 8] {
        let mut par = ChaseMachine::new(program, cfg, initial.clone());
        let par_stop = par.run_parallel(budget, threads);
        assert_eq!(stop, par_stop, "{label}: {variant:?} stop reason @ {threads} threads");
        assert_eq!(
            text,
            state_text(&par),
            "{label}: {variant:?} state diverged @ {threads} threads"
        );
    }
}

/// Same comparison for tracked runs: derivation DAG (every edge, parent
/// set, and frontier assignment) and Skolem cyclicity must coincide.
fn assert_same_derivation(
    label: &str,
    program: &Program,
    initial: &Instance,
    variant: ChaseVariant,
    budget: &Budget,
) {
    let cfg = ChaseConfig::of(variant).with_derivation().with_skolem();
    let mut seq = ChaseMachine::new(program, cfg, initial.clone());
    let mut par = ChaseMachine::new(program, cfg, initial.clone());
    assert_eq!(
        seq.run(budget),
        par.run_parallel(budget, 4),
        "{label}: {variant:?} tracked stop reason"
    );
    assert_eq!(
        format!("{:?}", seq.derivation()),
        format!("{:?}", par.derivation()),
        "{label}: {variant:?} derivation DAG diverged"
    );
    assert_eq!(seq.skolem_cyclic(), par.skolem_cyclic(), "{label}: {variant:?} skolem");
    assert_eq!(seq.stats(), par.stats(), "{label}: {variant:?} tracked stats");
}

/// Paper Examples 1 and 2, seeded with their facts, across all variants
/// and thread counts — including derivation-DAG identity.
#[test]
fn paper_examples_are_bit_identical_across_thread_counts() {
    let examples = [
        ("example-1", "person(bob). person(X) -> hasFather(X, Y), person(Y)."),
        ("example-2", "p(a, b). p(X, Y) -> p(Y, Z)."),
    ];
    let budget = Budget::applications(150);
    for (label, text) in examples {
        let mut program = Program::parse(text).unwrap();
        let initial = seed(&mut program);
        for variant in VARIANTS {
            assert_bit_identical(label, &program, &initial, variant, &budget);
            assert_same_derivation(label, &program, &initial, variant, &budget);
        }
    }
}

/// Every datagen family, chased from its facts or the critical instance,
/// across all variants and thread counts.
#[test]
fn every_datagen_family_is_bit_identical_across_thread_counts() {
    let budget = Budget::applications(250).with_atoms(4_000);
    for family in chasekit::datagen::corpus() {
        let mut program = family.program.clone();
        let initial = seed(&mut program);
        for variant in VARIANTS {
            assert_bit_identical(&family.name, &program, &initial, variant, &budget);
        }
    }
}

/// Derivation identity on a structurally diverse subset of the families
/// (tracked runs are memory-hungry, so not the whole corpus).
#[test]
fn family_derivations_are_identical_under_parallel_rounds() {
    let budget = Budget::applications(200);
    for family in [
        chasekit::datagen::chain(4),
        chasekit::datagen::wide(3),
        chasekit::datagen::data_exchange(3),
        chasekit::datagen::dl_lite(3, true),
    ] {
        let mut program = family.program.clone();
        let initial = seed(&mut program);
        for variant in VARIANTS {
            assert_same_derivation(&family.name, &program, &initial, variant, &budget);
        }
    }
}

/// The restricted parallel chase also yields a *universal model* when it
/// saturates: hom-equivalent to the sequential semi-oblivious model (the
/// bit-identity above is stronger, but this pins the semantics the ISSUE
/// actually needs even if scheduling ever changes).
#[test]
fn restricted_parallel_results_are_universal_model_equivalent() {
    let budget = Budget::applications(100_000).with_atoms(100_000);
    for family in [
        chasekit::datagen::chain(4),
        chasekit::datagen::dl_lite(3, false),
        chasekit::datagen::data_exchange(3),
        chasekit::datagen::wide_terminating(3),
    ] {
        // Only meaningful where the semi-oblivious chase saturates.
        if family.so_terminates != Some(true) {
            continue;
        }
        let mut program = family.program.clone();
        let initial = seed(&mut program);

        let mut so = ChaseMachine::new(
            &program,
            ChaseConfig::of(ChaseVariant::SemiOblivious),
            initial.clone(),
        );
        assert!(so.run(&budget).is_saturated(), "{}: so must saturate", family.name);

        let mut restricted = ChaseMachine::new(
            &program,
            ChaseConfig::of(ChaseVariant::Restricted),
            initial.clone(),
        );
        assert!(
            restricted.run_parallel(&budget, 4).is_saturated(),
            "{}: restricted must saturate",
            family.name
        );
        assert!(
            hom_equivalent(restricted.instance(), so.instance()),
            "{}: restricted parallel result is not a universal model",
            family.name
        );
    }
}

/// Strategy: small random programs with joins (1–2 body atoms, 1–2 head
/// atoms, shared variable pool) — existentials arise from head-only
/// variables. Structure is shrinkable.
fn random_program() -> impl Strategy<Value = Program> {
    let arity = |p: usize| (p % 3) + 1;
    let atom = |pool: usize| {
        (0usize..3, proptest::collection::vec(0usize..pool, 3)).prop_map(move |(p, vars)| (p, vars))
    };
    proptest::collection::vec(
        (proptest::collection::vec(atom(4), 1..3), proptest::collection::vec(atom(6), 1..3)),
        1..4,
    )
    .prop_map(move |rules| {
        let mut program = Program::new();
        let preds: Vec<_> = (0..3)
            .map(|i| program.vocab.declare_pred(&format!("p{i}"), arity(i)).unwrap())
            .collect();
        for (body, heads) in rules {
            let mut rb = RuleBuilder::new();
            for (bp, bvars) in body {
                let args: Vec<Term> =
                    (0..arity(bp)).map(|k| rb.var(&format!("X{}", bvars[k] % 4))).collect();
                rb.body_atom(preds[bp], args);
            }
            for (hp, hvars) in heads {
                let args: Vec<Term> =
                    (0..arity(hp)).map(|k| rb.var(&format!("X{}", hvars[k]))).collect();
                rb.head_atom(preds[hp], args);
            }
            program.add_rule(rb.build().unwrap()).unwrap();
        }
        program
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// 100 random programs: the parallel chase is bit-identical to the
    /// sequential oracle for every variant.
    #[test]
    fn random_programs_are_bit_identical_under_parallel_rounds(p in random_program()) {
        let mut program = p;
        let initial = seed(&mut program);
        let budget = Budget::applications(80).with_atoms(2_000);
        for variant in VARIANTS {
            let cfg = ChaseConfig::of(variant);
            let mut seq = ChaseMachine::new(&program, cfg, initial.clone());
            let stop = seq.run(&budget);
            let text = state_text(&seq);
            for threads in [2usize, 4] {
                let mut par = ChaseMachine::new(&program, cfg, initial.clone());
                prop_assert_eq!(stop, par.run_parallel(&budget, threads));
                prop_assert_eq!(&text, &state_text(&par));
            }
        }
    }
}
