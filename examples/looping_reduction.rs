//! The looping operator: turning entailment into (non-)termination.
//!
//! The paper's lower bounds reduce propositional atom entailment to the
//! complement of chase termination. This example builds the reduction for
//! a small Horn program and shows the decision procedure answering the
//! entailment question through the termination question.
//!
//! Run with: `cargo run --example looping_reduction`

use chasekit::core::display::program_to_string;
use chasekit::prelude::*;
use chasekit::termination::PropositionalProgram;

fn main() {
    // A propositional Horn program: rain ∧ cold → snow; snow → white.
    let entailed = PropositionalProgram::new(
        &[(&["rain", "cold"], "snow"), (&["snow"], "white")],
        &["rain", "cold"],
        "white",
    );
    println!("Goal entailed (ground truth fixpoint): {}", entailed.entails_goal());
    assert!(entailed.entails_goal());

    let looped = entailed.looped().unwrap();
    println!("\nLooped rule set (class: {}):", looped.class());
    print!("{}", program_to_string(&looped));

    let report = decide_guarded(&looped, GuardedConfig::new(ChaseVariant::SemiOblivious))
        .expect("looped sets are guarded");
    match &report.verdict {
        GuardedVerdict::Diverges(cert) => {
            println!(
                "\nChase DIVERGES (goal entailed): pumping certificate over predicate id {:?}, chain length {}",
                cert.ancestor.pred, cert.chain_length
            );
        }
        other => panic!("expected divergence, got {other:?}"),
    }

    // Remove 'cold' from the facts: the goal is no longer derivable and
    // the same gadget terminates.
    let unentailed = PropositionalProgram::new(
        &[(&["rain", "cold"], "snow"), (&["snow"], "white")],
        &["rain"],
        "white",
    );
    assert!(!unentailed.entails_goal());
    let looped = unentailed.looped().unwrap();
    let report = decide_guarded(&looped, GuardedConfig::new(ChaseVariant::SemiOblivious)).unwrap();
    println!(
        "\nWithout `cold` the chase {}.",
        match report.verdict {
            GuardedVerdict::Terminates => "TERMINATES (goal not entailed)",
            _ => panic!("expected termination"),
        }
    );
}
