//! Data exchange: materializing a target instance with the chase.
//!
//! The setting where chase termination was first studied systematically
//! (Fagin, Kolaitis, Miller, Popa — where weak acyclicity comes from):
//! source-to-target TGDs copy data into a target schema, inventing
//! placeholder values (labeled nulls) for unknown attributes; target TGDs
//! then enforce constraints on the result. The chase result, when finite,
//! is a *universal solution* — it embeds into every other solution.
//!
//! Run with: `cargo run --example data_exchange`

use chasekit::core::display::instance_to_string;
use chasekit::core::instance_hom_exists;
use chasekit::prelude::*;

fn main() {
    let mapping = Program::parse(
        r#"
        % Source-to-target mapping: employees move to the target schema,
        % inventing a department id per employee...
        emp(E, City)      -> workson(E, P), project(P, City).
        % ...and target dependencies: every project has a lead, who works
        % on the project.
        project(P, City)  -> lead(P, L), workson(L, P).

        % Source data.
        emp(ada, london).
        emp(grace, york).
        "#,
    )
    .unwrap();

    // Is the mapping safe (chase terminates for every source database)?
    let decision = decide(&mapping, ChaseVariant::SemiOblivious, &Budget::default());
    println!("Mapping terminates on all sources? {:?}", decision.terminates);
    assert_eq!(decision.terminates, Some(true));
    println!("Weakly acyclic (the classical data-exchange check)? {}", is_weakly_acyclic(&mapping));

    // Materialize the universal solution.
    let solution = chase_facts(&mapping, ChaseVariant::Restricted, &Budget::default());
    assert_eq!(solution.outcome, StopReason::Saturated);
    assert!(is_model(&mapping, &solution.instance));
    println!("\nUniversal solution ({} atoms):", solution.instance.len());
    print!("{}", instance_to_string(&solution.instance, &mapping.vocab));

    // Universality in action: the semi-oblivious chase computes a
    // (possibly larger) solution; both are homomorphically equivalent.
    let bigger = chase_facts(&mapping, ChaseVariant::SemiOblivious, &Budget::default());
    assert_eq!(bigger.outcome, StopReason::Saturated);
    println!(
        "\nRestricted solution: {} atoms; semi-oblivious solution: {} atoms",
        solution.instance.len(),
        bigger.instance.len()
    );
    assert!(instance_hom_exists(&solution.instance, &bigger.instance));
    assert!(instance_hom_exists(&bigger.instance, &solution.instance));
    println!("The two solutions are homomorphically equivalent (both universal).");

    // A mapping that is NOT safe: the lead of a project spawns a new
    // project for the lead, forever.
    let runaway = Program::parse(
        r#"
        emp(E, City)     -> workson(E, P), project(P, City).
        project(P, City) -> lead(P, L).
        lead(P, L)       -> workson(L, Q), project(Q, C).
        emp(ada, london).
        "#,
    )
    .unwrap();
    let decision = decide(&runaway, ChaseVariant::SemiOblivious, &Budget::default());
    println!("\nRunaway mapping terminates? {:?}", decision.terminates);
    assert_eq!(decision.terminates, Some(false));
}
