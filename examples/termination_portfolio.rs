//! The termination portfolio: every checker in the library, side by side,
//! on the calibration corpus.
//!
//! Shows what each syntactic condition says, what the exact procedures
//! decide, and which dispatcher method answered — a one-screen tour of the
//! paper's landscape.
//!
//! Run with: `cargo run --example termination_portfolio`

use chasekit::datagen::{corpus, ontology_corpus};
use chasekit::prelude::*;

fn yn(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no "
    }
}

fn verdict(v: Option<bool>) -> &'static str {
    match v {
        Some(true) => "terminates",
        Some(false) => "diverges  ",
        None => "unknown   ",
    }
}

fn main() {
    let header: [&str; 9] =
        ["rule set", "class", "WA ", "RA ", "JA ", "aGRD", "CT-so", "CT-o", "portfolio method"];
    println!(
        "{:<22} {:<13} | {} {} {} {} | {:<11} {:<11} | {:?}",
        header[0], header[1], header[2], header[3], header[4], header[5], header[6], header[7],
        header[8]
    );
    println!("{}", "-".repeat(110));

    // The calibration corpus plus the ontology-shaped families behind the
    // landscape shoot-out (`chasekit bench landscape`).
    for lp in corpus().into_iter().chain(ontology_corpus()) {
        let p = &lp.program;
        let wa = is_weakly_acyclic(p);
        let ra = is_richly_acyclic(p);
        let ja = is_jointly_acyclic(p);
        let agrd = is_grd_acyclic(p);

        let so = decide(p, ChaseVariant::SemiOblivious, &Budget::default());
        let ob = decide(p, ChaseVariant::Oblivious, &Budget::default());

        println!(
            "{:<24} {:<13} | {} {} {} {}  | {:<11} {:<11} | {:?}",
            lp.name,
            p.class().to_string(),
            yn(wa),
            yn(ra),
            yn(ja),
            yn(agrd),
            verdict(so.terminates),
            verdict(ob.terminates),
            so.method,
        );

        // Every member promises a syntactic class; the calibration members
        // additionally carry analytic ground truth (the ontology families
        // leave truth to the bounded-chase oracle — see
        // tests/checker_oracle.rs) — check whatever is known, live.
        assert!(lp.class_holds(), "{}: class drifted above {:?}", lp.name, lp.expected_class);
        if lp.so_terminates.is_some() {
            assert_eq!(so.terminates, lp.so_terminates, "{} (so)", lp.name);
        }
        if lp.o_terminates.is_some() {
            assert_eq!(ob.terminates, lp.o_terminates, "{} (o)", lp.name);
        }
    }

    println!("\nEvery decision above matches the corpus's analytic ground truth.");

    // And the restricted chase, for the members its procedures can reach.
    println!("\nRestricted chase (future-work procedure):");
    for lp in corpus().into_iter().chain(ontology_corpus()) {
        let v = restricted_verdict(&lp.program);
        if v.terminates.is_some() {
            println!("  {:<24} {} ({:?})", lp.name, verdict(v.terminates), v.method);
        }
    }
}
