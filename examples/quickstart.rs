//! Quickstart: the paper's two worked examples, end to end.
//!
//! Run with: `cargo run --example quickstart`

use chasekit::core::display::{instance_to_string, rule_to_string};
use chasekit::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // Example 1 of the paper: every person has a father who is a person.
    // ------------------------------------------------------------------
    let program = Program::parse(
        r#"
        % Example 1 (PODS'15): the chase runs forever.
        person(bob).
        person(X) -> hasFather(X, Y), person(Y).
        "#,
    )
    .expect("the example parses");

    println!("Rules:");
    for rule in program.rules() {
        println!("  {}", rule_to_string(rule, &program.vocab));
    }
    println!("Class: {}\n", program.class());

    // Run the chase for a few steps to watch it not terminate.
    let run = chase_facts(&program, ChaseVariant::SemiOblivious, &Budget::applications(6));
    println!(
        "Semi-oblivious chase after {} steps ({:?}):",
        run.stats.applications, run.outcome
    );
    print!("{}", instance_to_string(&run.instance, &program.vocab));

    // Decide termination on ALL databases (exact: the rules are simple
    // linear, so this is the paper's Theorem 1 procedure).
    let decision = decide(&program, ChaseVariant::SemiOblivious, &Budget::default());
    println!(
        "\nDecision: the semi-oblivious chase {} on all databases (method: {:?})\n",
        if decision.terminates == Some(true) { "terminates" } else { "DIVERGES" },
        decision.method,
    );
    assert_eq!(decision.terminates, Some(false));

    // ------------------------------------------------------------------
    // Example 2 of the paper: p(a,b) with p(X,Y) -> ∃Z p(Y,Z).
    // ------------------------------------------------------------------
    let program2 = Program::parse("p(a, b). p(X, Y) -> p(Y, Z).").unwrap();
    let run2 = chase_facts(&program2, ChaseVariant::SemiOblivious, &Budget::applications(5));
    println!("Example 2 after {} steps:", run2.stats.applications);
    print!("{}", instance_to_string(&run2.instance, &program2.vocab));

    // Contrast: a variant rule that the semi-oblivious chase DOES
    // terminate on, but the oblivious chase does not — the reason the
    // paper analyses the variants separately.
    let separator = Program::parse("r(a, b). r(X, Y) -> r(X, Z).").unwrap();
    let so = decide(&separator, ChaseVariant::SemiOblivious, &Budget::default());
    let ob = decide(&separator, ChaseVariant::Oblivious, &Budget::default());
    println!(
        "\nSeparator r(X,Y) -> r(X,Z): semi-oblivious {}, oblivious {}",
        if so.terminates == Some(true) { "terminates" } else { "diverges" },
        if ob.terminates == Some(true) { "terminates" } else { "diverges" },
    );
    assert_eq!(so.terminates, Some(true));
    assert_eq!(ob.terminates, Some(false));
}
