//! Ontology reasoning: DL-Lite-style inclusion dependencies.
//!
//! Simple linear TGDs capture inclusion dependencies and the core of
//! DL-Lite (the paper, §3.1). This example models a small university
//! ontology, checks whether materializing it with the chase is safe
//! (terminates for every ABox), and materializes a universal model used to
//! answer queries.
//!
//! Run with: `cargo run --example ontology_reasoning`

use chasekit::core::display::instance_to_string;
use chasekit::prelude::*;

fn main() {
    // A terminating ontology: the existential chain bottoms out.
    let safe = Program::parse(
        r#"
        % TBox (inclusion dependencies)
        professor(X)    -> teaches(X, C).        % every professor teaches something
        teaches(X, C)   -> course(C).            % what is taught is a course
        course(C)       -> inDept(C, D).         % every course belongs to a department
        inDept(C, D)    -> department(D).
        % ABox
        professor(turing).
        teaches(turing, computability).
        "#,
    )
    .unwrap();

    println!("TBox class: {}", safe.class());
    let decision = decide(&safe, ChaseVariant::SemiOblivious, &Budget::default());
    println!(
        "Materialization safe for every ABox? {}",
        if decision.terminates == Some(true) { "yes" } else { "NO" }
    );
    assert_eq!(decision.terminates, Some(true));

    let run = chase_facts(&safe, ChaseVariant::SemiOblivious, &Budget::default());
    assert_eq!(run.outcome, StopReason::Saturated);
    assert!(is_model(&safe, &run.instance));
    println!("\nUniversal model ({} atoms):", run.instance.len());
    print!("{}", instance_to_string(&run.instance, &safe.vocab));

    // Query: is there a department (possibly anonymous) for Turing's course?
    let dept = safe.vocab.pred("department").expect("declared");
    let has_dept = !run.instance.with_pred(dept).is_empty();
    println!("\nCertain answer to 'exists a department'? {has_dept}");
    assert!(has_dept);

    // An unsafe ontology: closing the chain back to professor makes the
    // chase invent professors forever.
    let unsafe_onto = Program::parse(
        r#"
        professor(X)  -> teaches(X, C).
        teaches(X, C) -> course(C).
        course(C)     -> taughtBy(C, P).
        taughtBy(C, P) -> professor(P).
        professor(turing).
        "#,
    )
    .unwrap();
    let decision = decide(&unsafe_onto, ChaseVariant::SemiOblivious, &Budget::default());
    println!(
        "\nWith the cycle course -> taughtBy -> professor: terminates? {:?}",
        decision.terminates
    );
    assert_eq!(decision.terminates, Some(false));

    // The sufficient conditions agree here, but the exact procedure is
    // what certifies the *safe* ontology too (weak acyclicity happens to
    // suffice for it — check):
    println!(
        "weak acyclicity on the safe ontology: {}",
        is_weakly_acyclic(&safe)
    );
}
