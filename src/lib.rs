//! # chasekit
//!
//! A library for **chase termination analysis of existential rules**
//! (tuple-generating dependencies), reproducing *"Chase Termination for
//! Guarded Existential Rules"* (Calautti, Gottlob & Pieris, PODS 2015).
//!
//! The chase is the workhorse of data exchange, ontological query
//! answering, and constraint reasoning: given a database and a set of TGDs
//! it materializes a *universal model* — when it terminates. This crate
//! provides:
//!
//! * a complete data model for TGDs ([`core`]: terms, atoms, rules with
//!   the simple-linear ⊊ linear ⊊ guarded classification, a textual rule
//!   format, indexed instances, homomorphisms, critical instances);
//! * the three standard chase variants ([`engine`]: oblivious,
//!   semi-oblivious, restricted) with fair scheduling, budgets, and
//!   derivation tracking;
//! * the classical sufficient termination conditions ([`acyclicity`]:
//!   weak, rich, joint acyclicity, aGRD) and model-faithful acyclicity;
//! * the paper's **exact decision procedures** ([`termination`]): the
//!   shape-graph procedure for linear TGDs (Theorems 1–3), the pumping
//!   procedure for guarded TGDs (Theorem 4), the looping-operator
//!   reduction behind the lower bounds, and the future-work
//!   restricted-chase procedure for single-head linear TGDs;
//! * seeded workload generators ([`datagen`]) powering the experiment
//!   suite (see `crates/bench` and EXPERIMENTS.md), and the experiment
//!   harness itself ([`bench`]) including the corpus-scale checker
//!   shoot-out (`chasekit bench landscape`).
//!
//! ## Quickstart
//!
//! ```
//! use chasekit::prelude::*;
//!
//! // Example 1 of the paper: every person has a father, who is a person.
//! let program = Program::parse(
//!     "person(bob). person(X) -> hasFather(X, Y), person(Y).",
//! )
//! .unwrap();
//!
//! // The chase runs forever on this rule set...
//! let run = chase_facts(&program, ChaseVariant::SemiOblivious, &Budget::applications(100));
//! assert_eq!(run.outcome, StopReason::Applications);
//!
//! // ...and the exact decision procedure proves it diverges on *every*
//! // database (the rule set is simple linear, so this is Theorem 1).
//! let decision = decide(&program, ChaseVariant::SemiOblivious, &Budget::default());
//! assert_eq!(decision.terminates, Some(false));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use chasekit_acyclicity as acyclicity;
pub use chasekit_bench as bench;
pub use chasekit_core as core;
pub use chasekit_datagen as datagen;
pub use chasekit_engine as engine;
pub use chasekit_termination as termination;

/// The most common imports in one place.
pub mod prelude {
    pub use chasekit_acyclicity::{
        is_grd_acyclic, is_jointly_acyclic, is_richly_acyclic, is_weakly_acyclic,
    };
    pub use chasekit_core::{
        Atom, CriticalInstance, Instance, Program, RuleBuilder, RuleClass, Term, Tgd,
    };
    pub use chasekit_engine::{
        chase, chase_facts, is_model, Budget, CancelToken, ChaseMachine, ChaseVariant,
        Checkpoint, StopReason,
    };
    pub use chasekit_termination::{
        decide, decide_guarded, decide_linear, is_mfa, restricted_verdict, Decision,
        GuardedConfig, GuardedVerdict, Method,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let p = Program::parse("e(X, Y) -> e(Y, Z).").unwrap();
        assert_eq!(p.class(), RuleClass::SimpleLinear);
        assert!(!is_weakly_acyclic(&p));
        let d = decide(&p, ChaseVariant::SemiOblivious, &Budget::default());
        assert_eq!(d.terminates, Some(false));
    }
}
