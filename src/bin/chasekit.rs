//! `chasekit` — command-line front end.
//!
//! ```text
//! chasekit classify  <rules-file>
//! chasekit conditions <rules-file>
//! chasekit decide    <rules-file> [--variant o|so] [--fuel N]
//! chasekit explain   <rules-file> [--variant o|so]
//! chasekit chase     <rules-file> [--variant o|so|restricted] [--steps N] [--dot FILE]
//!                    [--timeout-ms N] [--max-atoms-mem BYTES] [--checkpoint FILE]
//!                    [--journal FILE] [--checkpoint-every N] [--recover]
//!                    [--threads N] [--trace FILE] [--metrics FILE] [--progress SECS]
//! chasekit critical  <rules-file> [--standard]
//! chasekit serve     --store DIR [--addr HOST:PORT] [--workers N] [--queue N]
//!                    [--variant o|so|restricted] [--steps N] [--timeout-ms N]
//!                    [--max-atoms-mem BYTES] [--checkpoint-every N]
//!                    [--journal-flush-every N]
//! chasekit bench landscape [--quick] [--json FILE]
//! ```
//!
//! The rules file uses the textual format described in the README; facts in
//! the file seed the `chase` subcommand (the critical instance is used when
//! no facts are present).
//!
//! ## Exit codes
//!
//! `chase` maps its [`StopReason`] to a distinct exit code so scripts can
//! tell *why* a run stopped: 0 saturated, 10 application budget, 11 atom
//! budget, 12 wall-clock deadline, 13 memory ceiling, 14 cancelled, 15
//! durability I/O failure. A successful `--recover` exits 3 (recovered, not
//! chased). Argument errors exit 2; file/parse errors exit 1.
//!
//! ## Fault injection
//!
//! The `CHASEKIT_FAILPOINTS` environment variable arms deterministic
//! faults in the durability layer (see `chasekit::engine::failpoint`), e.g.
//! `CHASEKIT_FAILPOINTS="journal.append=exit:9@40"` kills the process on
//! the 40th journal append — the crash-recovery suite drives the binary
//! this way.

use std::process::ExitCode;

use chasekit::core::display::{instance_to_string, rule_to_string};
use chasekit::engine::{
    failpoint, needs_recovery, recover, write_snapshot_atomic, Checkpoint, JournalWriter,
    JsonlSink, MetricsSink, MultiSink, StopReason, TraceEvent, TraceSink,
};
use chasekit::prelude::*;

const USAGE: &str = "usage: chasekit <classify|conditions|decide|explain|chase|critical> <rules-file> [options]
       chasekit update <rules-file> --edits SCRIPT [options]
       chasekit serve --store DIR [options]
       chasekit bench landscape [--quick] [--json FILE]
options:
  --variant o|so|restricted   chase variant (default: so)
  --steps N                   chase step budget (default: 10000)
  --fuel N                    decision fuel (default: 50000)
  --standard                  use the standard-database critical instance
  --dot FILE                  (chase) write the derivation DAG as Graphviz
  --timeout-ms N              (chase) wall-clock deadline in milliseconds
  --max-atoms-mem BYTES       (chase) approximate memory ceiling in bytes
  --checkpoint FILE           (chase) resume from FILE if present; write the
                              run state back there when a guardrail stops it
  --journal FILE              (chase) write-ahead journal of applications;
                              requires --checkpoint. A crash loses at most
                              the torn final record; recover with --recover
  --checkpoint-every N        (chase/serve) snapshot + re-base the journal
                              every N applications; chase requires
                              --checkpoint, serve applies it to every job
  --recover                   (chase) recover from --checkpoint + --journal
                              after a crash: truncate the torn tail, replay
                              the journal, rewrite a clean snapshot, print a
                              recovery report, and exit 3 (without chasing)
  --threads N                 (chase) worker threads for parallel-round
                              execution (default: 1 = sequential; 0 = one
                              per available core); results are bit-identical
                              at every thread count
  --trace FILE                (chase) write a JSONL event trace; composes
                              with --checkpoint (sequence numbers continue
                              across resume) and every --threads count
  --metrics FILE              (chase) write a metrics-registry JSON report
                              (counters, histograms, per-rule/per-predicate)
  --progress SECS             (chase) print a progress line to stderr at
                              most every SECS seconds (SECS >= 1)
  --journal-flush-every N     (chase/serve) journal group-commit: batch N
                              records per write (default 1 = write-per-
                              record); chase requires --journal
  --edits FILE                (update) edit script: one `add <atom>.` or
                              `retract <atom>.` per line, `%` comments.
                              The chase runs to the --steps budget, the
                              script is applied incrementally (DRed
                              retraction over the derivation DAG), and a
                              completion chase gets --steps more
  --store DIR                 (serve) job-store root; in-flight jobs found
                              there at startup are recovered and completed
  --keep-completed N          (serve) store compaction: retain at most N
                              completed job directories, oldest removed
                              first (default: keep everything)
  --addr HOST:PORT            (serve) bind address (default 127.0.0.1:0,
                              an ephemeral port, printed at startup)
  --workers N                 (serve) worker threads running jobs
                              (default 2; 0 = one per available core)
  --queue N                   (serve) admission cap: queued+running jobs
                              beyond it are rejected as overloaded (default 16)
  --quick                     (bench landscape) smoke-scale run (also
                              implied by CHASEKIT_BENCH_QUICK=1)
  --json FILE                 (bench landscape) JSON output path (default:
                              BENCH_checker_landscape.json at the repo root)
exit codes (chase): 0 saturated, 10 applications, 11 atoms, 12 wall-clock,
                    13 memory, 14 cancelled, 15 durability I/O failure;
                    3 after a successful --recover";

/// A named argument error: says exactly which argument was bad and why.
fn arg_error(msg: String) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

struct Args {
    command: String,
    file: String,
    variant: ChaseVariant,
    steps: u64,
    fuel: u64,
    standard: bool,
    dot: Option<String>,
    timeout_ms: Option<u64>,
    max_mem: Option<usize>,
    checkpoint: Option<String>,
    journal: Option<String>,
    checkpoint_every: Option<u64>,
    recover: bool,
    threads: usize,
    trace: Option<String>,
    metrics: Option<String>,
    progress: Option<u64>,
    flush_every: u64,
    store: Option<String>,
    addr: String,
    workers: usize,
    queue: usize,
    edits: Option<String>,
    keep_completed: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or("missing <command> argument")?;
    let known =
        ["classify", "conditions", "decide", "explain", "chase", "critical", "serve", "update"];
    if !known.contains(&command.as_str()) {
        return Err(format!(
            "unknown command `{command}` (expected one of: {})",
            known.join(", ")
        ));
    }
    // `serve` takes no rules file: programs arrive over the wire.
    let file = if command == "serve" {
        String::new()
    } else {
        argv.next().ok_or_else(|| format!("`{command}` needs a <rules-file> argument"))?
    };
    let mut out = Args {
        command,
        file,
        variant: ChaseVariant::SemiOblivious,
        steps: 10_000,
        fuel: 50_000,
        standard: false,
        dot: None,
        timeout_ms: None,
        max_mem: None,
        checkpoint: None,
        journal: None,
        checkpoint_every: None,
        recover: false,
        threads: 1,
        trace: None,
        metrics: None,
        progress: None,
        flush_every: 1,
        store: None,
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue: 16,
        edits: None,
        keep_completed: None,
    };
    // The host's available parallelism, for `--threads 0` / `--workers 0`.
    fn detected_parallelism() -> usize {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
    // A flag's value, or a named error if the command line ends first.
    fn value(argv: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
        argv.next().ok_or_else(|| format!("`{flag}` requires a value"))
    }
    // A flag's numeric value, naming the flag and the offending text.
    fn number<T: std::str::FromStr>(
        argv: &mut impl Iterator<Item = String>,
        flag: &str,
    ) -> Result<T, String> {
        let raw = value(argv, flag)?;
        raw.parse()
            .map_err(|_| format!("`{flag}` expects a non-negative integer, got `{raw}`"))
    }
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--variant" => {
                let raw = value(&mut argv, "--variant")?;
                out.variant = match raw.as_str() {
                    "o" | "oblivious" => ChaseVariant::Oblivious,
                    "so" | "semi-oblivious" => ChaseVariant::SemiOblivious,
                    "restricted" | "standard" => ChaseVariant::Restricted,
                    other => {
                        return Err(format!(
                            "`--variant` expects o|so|restricted, got `{other}`"
                        ))
                    }
                }
            }
            "--steps" => out.steps = number(&mut argv, "--steps")?,
            "--fuel" => out.fuel = number(&mut argv, "--fuel")?,
            "--standard" => out.standard = true,
            "--dot" => out.dot = Some(value(&mut argv, "--dot")?),
            "--timeout-ms" => out.timeout_ms = Some(number(&mut argv, "--timeout-ms")?),
            "--max-atoms-mem" => out.max_mem = Some(number(&mut argv, "--max-atoms-mem")?),
            "--checkpoint" => out.checkpoint = Some(value(&mut argv, "--checkpoint")?),
            "--journal" => out.journal = Some(value(&mut argv, "--journal")?),
            "--checkpoint-every" => {
                let every: u64 = number(&mut argv, "--checkpoint-every")?;
                if every == 0 {
                    return Err(
                        "`--checkpoint-every` expects a positive integer, got `0`".to_string()
                    );
                }
                out.checkpoint_every = Some(every);
            }
            "--recover" => out.recover = true,
            "--threads" => {
                let n: usize = number(&mut argv, "--threads")?;
                // 0 means "use every core the host offers".
                out.threads = if n == 0 { detected_parallelism() } else { n };
            }
            "--trace" => out.trace = Some(value(&mut argv, "--trace")?),
            "--metrics" => out.metrics = Some(value(&mut argv, "--metrics")?),
            "--progress" => {
                let secs: u64 = number(&mut argv, "--progress")?;
                if secs == 0 {
                    return Err(
                        "`--progress` expects a positive number of seconds, got `0`".to_string()
                    );
                }
                out.progress = Some(secs);
            }
            "--journal-flush-every" => {
                let every: u64 = number(&mut argv, "--journal-flush-every")?;
                if every == 0 {
                    return Err(
                        "`--journal-flush-every` expects a positive integer, got `0`".to_string()
                    );
                }
                out.flush_every = every;
            }
            "--edits" => out.edits = Some(value(&mut argv, "--edits")?),
            "--keep-completed" => {
                let n: usize = number(&mut argv, "--keep-completed")?;
                if n == 0 {
                    return Err(
                        "`--keep-completed` expects a positive integer, got `0`".to_string()
                    );
                }
                out.keep_completed = Some(n);
            }
            "--store" => out.store = Some(value(&mut argv, "--store")?),
            "--addr" => out.addr = value(&mut argv, "--addr")?,
            "--workers" => {
                let n: usize = number(&mut argv, "--workers")?;
                out.workers = if n == 0 { detected_parallelism() } else { n };
            }
            "--queue" => {
                out.queue = number(&mut argv, "--queue")?;
                if out.queue == 0 {
                    return Err("`--queue` expects a positive integer, got `0`".to_string());
                }
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if out.command == "serve" && out.store.is_none() {
        return Err("`serve` requires `--store DIR` (the job-store root)".to_string());
    }
    if out.command != "serve" && out.store.is_some() {
        return Err("`--store` is only valid with `serve`".to_string());
    }
    if out.command != "serve" && out.flush_every > 1 && out.journal.is_none() {
        return Err("`--journal-flush-every` requires `--journal` (there is no journal \
             to batch without one)"
            .to_string());
    }
    if out.checkpoint.is_some() && out.dot.is_some() {
        return Err(
            "`--checkpoint` cannot be combined with `--dot` \
             (derivation tracking is not checkpointable)"
                .to_string(),
        );
    }
    if out.journal.is_some() && out.checkpoint.is_none() {
        return Err("`--journal` requires `--checkpoint` (the journal replays on top \
             of the snapshot)"
            .to_string());
    }
    if out.checkpoint_every.is_some() && out.checkpoint.is_none() && out.command != "serve" {
        return Err("`--checkpoint-every` requires `--checkpoint`".to_string());
    }
    if out.recover && (out.checkpoint.is_none() || out.journal.is_none()) {
        return Err("`--recover` requires both `--checkpoint` and `--journal`".to_string());
    }
    if out.command == "update" && out.edits.is_none() {
        return Err("`update` requires `--edits FILE` (the edit script)".to_string());
    }
    if out.command != "update" && out.edits.is_some() {
        return Err("`--edits` is only valid with `update`".to_string());
    }
    if out.command == "update" && (out.checkpoint.is_some() || out.journal.is_some()) {
        return Err("`update` cannot be combined with `--checkpoint`/`--journal`: \
             derivation-tracked machines are not serializable (re-run the edited \
             program with `chase` for a durable artifact)"
            .to_string());
    }
    if out.command != "serve" && out.keep_completed.is_some() {
        return Err("`--keep-completed` is only valid with `serve`".to_string());
    }
    Ok(out)
}

/// Syncs the journal, publishes the snapshot crash-atomically, and re-bases
/// the journal on the new snapshot. The order is the recovery invariant:
/// the journal always covers at least everything past the published
/// snapshot, so a kill anywhere in here loses nothing.
fn write_durable_snapshot(
    machine: &mut chasekit::engine::ChaseMachine<'_>,
    checkpoint: &str,
    journal: Option<&str>,
    flush_every: u64,
) -> Result<(), String> {
    let text = machine
        .snapshot()
        .to_text()
        .map_err(|e| format!("cannot checkpoint run: {e}"))?;
    if let Some(mut j) = machine.take_journal() {
        j.sync().map_err(|e| format!("cannot sync journal {}: {e}", j.path().display()))?;
    }
    write_snapshot_atomic(std::path::Path::new(checkpoint), &text)
        .map_err(|e| format!("cannot write checkpoint {checkpoint}: {e}"))?;
    if let Some(path) = journal {
        let j = JournalWriter::for_machine(std::path::Path::new(path), machine)
            .map_err(|e| format!("cannot re-base journal {path}: {e}"))?
            .with_flush_every(flush_every);
        machine.set_journal(j);
    }
    Ok(())
}

/// Durability failures are exit 15 ([`StopReason::Io`]'s code), not a
/// generic 1: a full disk or revoked permission mid-run is an I/O stop,
/// and scripts watching the run need to tell it apart from a bad input.
const DURABILITY_FAILURE: u8 = 15;

/// `chase --recover`: replay the journal atop the last good snapshot,
/// publish the recovered state, and exit 3 without continuing the chase.
fn run_recovery(args: &Args, program: &Program) -> ExitCode {
    let ckpt_path = args.checkpoint.as_deref().expect("validated by parse_args");
    let journal_path = args.journal.as_deref().expect("validated by parse_args");
    let snapshot_text = match std::fs::read_to_string(ckpt_path) {
        Ok(t) => Some(t),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => {
            eprintln!("cannot read checkpoint {ckpt_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let journal_bytes = match std::fs::read(journal_path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => {
            eprintln!("cannot read journal {journal_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The pre-first-snapshot genesis state, mirroring a fresh `chase` start.
    let mut genesis_program = program.clone();
    let genesis = if genesis_program.facts().is_empty() {
        CriticalInstance::build(&mut genesis_program).instance
    } else {
        Instance::from_atoms(genesis_program.facts().iter().cloned())
    };
    let genesis_config = chasekit::engine::ChaseConfig::of(args.variant);

    let (mut machine, report) = match recover(
        &genesis_program,
        snapshot_text.as_deref(),
        &journal_bytes,
        genesis,
        genesis_config,
    ) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("cannot recover: {e}");
            return ExitCode::FAILURE;
        }
    };

    if report.had_snapshot {
        println!("recovery: snapshot at {} applications", report.snapshot_applications);
    } else {
        println!("recovery: no snapshot found, starting from the initial instance");
    }
    println!(
        "recovery: {} journal records replayed ({} already covered by the snapshot), \
         {} bytes of torn tail truncated",
        report.records_replayed, report.records_skipped, report.bytes_truncated
    );
    println!(
        "recovered state: {} applications, {} atoms",
        report.final_applications, report.final_atoms
    );

    if let Err(msg) =
        write_durable_snapshot(&mut machine, ckpt_path, Some(journal_path), args.flush_every)
    {
        eprintln!("{msg}");
        return ExitCode::from(DURABILITY_FAILURE);
    }
    println!("recovered state written to {ckpt_path} (rerun without --recover to continue)");
    ExitCode::from(3)
}

/// `chasekit serve`: run the multi-tenant chase service until shutdown.
///
/// Startup prints `listening on ADDR` (with an explicit flush, so tests
/// driving the binary through a pipe see it promptly) followed by one
/// `recovered job-N` line per in-flight job the restart scan found; those
/// jobs are already re-queued and will complete without client action.
fn run_serve(args: &Args) -> ExitCode {
    use chasekit::engine::serve::{JobSpec, ServeConfig};
    use std::io::Write as _;

    let store = args.store.as_deref().expect("validated by parse_args");
    let mut config = ServeConfig::new(std::path::Path::new(store));
    config.addr = args.addr.clone();
    config.workers = args.workers;
    config.queue_capacity = args.queue;
    config.keep_completed = args.keep_completed;
    config.defaults = JobSpec {
        variant: args.variant,
        steps: args.steps,
        timeout_ms: args.timeout_ms,
        max_atoms: None,
        max_memory: args.max_mem,
        checkpoint_every: args.checkpoint_every.unwrap_or(256),
        flush_every: args.flush_every,
    };

    let handle = match chasekit::engine::serve::serve(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot start server on {}: {e}", args.addr);
            return ExitCode::from(DURABILITY_FAILURE);
        }
    };
    let mut out = std::io::stdout();
    let _ = writeln!(out, "listening on {}", handle.addr());
    for job in handle.recovered_jobs() {
        let _ = writeln!(out, "recovered {job}");
    }
    let _ = out.flush();
    handle.wait();
    ExitCode::SUCCESS
}

/// `chasekit bench landscape [--quick] [--json FILE]`: the corpus-scale
/// termination-checker shoot-out (experiment E9). Renders the landscape
/// tables, writes the JSON artifact, and exits non-zero if any checker
/// contradicted the bounded-chase ground truth.
fn run_bench(argv: &[String]) -> ExitCode {
    use chasekit::bench::exp::landscape;

    match argv.first().map(String::as_str) {
        Some("landscape") => {}
        Some(other) => return arg_error(format!("unknown bench subcommand `{other}`")),
        None => return arg_error("`bench` needs a subcommand (landscape)".to_string()),
    }
    let mut quick =
        std::env::var("CHASEKIT_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let mut json_path: Option<String> = None;
    let mut it = argv[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--json" => match it.next() {
                Some(path) => json_path = Some(path.clone()),
                None => return arg_error("`--json` requires a value".to_string()),
            },
            other => return arg_error(format!("unknown bench flag `{other}`")),
        }
    }

    let params = if quick { landscape::Params::quick() } else { landscape::Params::default() };
    let result = landscape::run(&params);
    for t in &result.tables {
        println!("{}", t.render());
    }
    let path = json_path.unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_checker_landscape.json").to_string()
    });
    if let Err(e) = std::fs::write(&path, &result.json) {
        eprintln!("cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "landscape: {} programs, {} checkers, {} contradictions -> {path}",
        result.outcome.programs,
        landscape::CHECKERS.len(),
        result.outcome.contradictions.len()
    );
    if result.outcome.contradictions.is_empty() {
        ExitCode::SUCCESS
    } else {
        for c in &result.outcome.contradictions {
            eprintln!("contradiction: {c}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    // `bench` has its own tiny argv shape (subcommand + flags, no rules
    // file); dispatch it before the rules-file argument parser.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("bench") {
        return run_bench(&raw[1..]);
    }
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => return arg_error(msg),
    };
    // Fault injection for the crash-recovery suite: armed from the
    // environment so the spec survives into this exact process.
    if let Ok(spec) = std::env::var(failpoint::ENV_VAR) {
        if let Err(msg) = failpoint::configure(&spec) {
            return arg_error(format!("{}: {msg}", failpoint::ENV_VAR));
        }
    }
    // `serve` has no rules file to read: dispatch before the file I/O.
    if args.command == "serve" {
        return run_serve(&args);
    }
    let text = match std::fs::read_to_string(&args.file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let program = match Program::parse(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    match args.command.as_str() {
        "classify" => {
            println!("rules: {}", program.rules().len());
            println!("facts: {}", program.facts().len());
            println!("class: {}", program.class());
            for (i, rule) in program.rules().iter().enumerate() {
                println!(
                    "  [{i}] {} ({}{}{})",
                    rule_to_string(rule, &program.vocab),
                    if rule.is_simple_linear() {
                        "simple-linear"
                    } else if rule.is_linear() {
                        "linear"
                    } else if rule.is_guarded() {
                        "guarded"
                    } else {
                        "unrestricted"
                    },
                    if rule.is_datalog() { ", datalog" } else { "" },
                    if rule.is_single_head() { "" } else { ", multi-head" },
                );
            }
            ExitCode::SUCCESS
        }
        "conditions" => {
            use chasekit::acyclicity::{check_with_work, GraphKind};
            use chasekit::termination::{mfa_report, CheckerEffort};
            // Every line reports cost through the same CheckerEffort
            // rendering the landscape harness uses.
            let (wa, wa_work) = check_with_work(&program, GraphKind::Standard);
            let (ra, ra_work) = check_with_work(&program, GraphKind::Extended);
            println!(
                "weak acyclicity (WA):   {} {}",
                wa.is_acyclic(),
                CheckerEffort::from(wa_work).summary()
            );
            println!(
                "rich acyclicity (RA):   {} {}",
                ra.is_acyclic(),
                CheckerEffort::from(ra_work).summary()
            );
            println!("joint acyclicity (JA):  {}", is_jointly_acyclic(&program));
            println!("aGRD:                   {}", is_grd_acyclic(&program));
            let mfa = mfa_report(&program, &Budget::default());
            println!(
                "MFA:                    {} {}",
                match mfa.status.is_mfa() {
                    Some(b) => b.to_string(),
                    None => "unknown (fuel)".to_string(),
                },
                mfa.effort.summary()
            );
            ExitCode::SUCCESS
        }
        "decide" => {
            if args.variant == ChaseVariant::Restricted {
                let v = restricted_verdict(&program);
                println!("restricted chase on all databases: {:?} via {:?}", v.terminates, v.method);
                return ExitCode::SUCCESS;
            }
            let budget = Budget::applications(args.fuel);
            let d = decide(&program, args.variant, &budget);
            println!("class:  {}", d.class);
            println!("method: {:?}", d.method);
            println!("effort: {}", d.effort.summary());
            match d.terminates {
                Some(true) => println!("the {} chase TERMINATES on all databases", args.variant),
                Some(false) => println!("the {} chase DIVERGES on some database", args.variant),
                None => println!("undecided within fuel ({} applications)", args.fuel),
            }
            ExitCode::SUCCESS
        }
        "chase" => {
            if args.recover {
                return run_recovery(&args, &program);
            }
            let mut program = program.clone();
            use chasekit::engine::{ChaseConfig, ChaseMachine};
            let mut cfg = ChaseConfig::of(args.variant);
            if args.dot.is_some() {
                cfg = cfg.with_derivation();
            }

            // Observability outputs are opened before any chase work so a
            // bad path fails fast (exit 1), not after a long run.
            let trace_out = match &args.trace {
                Some(path) => match std::fs::File::create(path) {
                    Ok(f) => Some(std::io::BufWriter::new(f)),
                    Err(e) => {
                        eprintln!("cannot create trace file {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => None,
            };
            let mut metrics_file = match &args.metrics {
                Some(path) => match std::fs::File::create(path) {
                    Ok(f) => Some(f),
                    Err(e) => {
                        eprintln!("cannot create metrics file {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => None,
            };
            let mut sinks: Vec<Box<dyn TraceSink>> = Vec::new();
            if let Some(out) = trace_out {
                sinks.push(Box::new(JsonlSink::new(out, &program)));
            }
            let registry = if metrics_file.is_some() {
                let ms = MetricsSink::new(&program);
                let reg = ms.registry();
                sinks.push(Box::new(ms));
                Some(reg)
            } else {
                None
            };
            let sink: Option<Box<dyn TraceSink>> = match sinks.len() {
                0 => None,
                1 => sinks.pop(),
                _ => Some(Box::new(MultiSink::new(sinks))),
            };

            // Resume from a checkpoint file when one exists; otherwise start
            // fresh (from the file's facts or the critical instance).
            let resumed = match &args.checkpoint {
                Some(path) if std::path::Path::new(path).exists() => {
                    let text = match std::fs::read_to_string(path) {
                        Ok(t) => t,
                        Err(e) => {
                            eprintln!("cannot read checkpoint {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    match Checkpoint::from_text(&text) {
                        Ok(snap) => Some(snap),
                        Err(e) => {
                            eprintln!("cannot load checkpoint {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                _ => None,
            };

            let mut machine = match &resumed {
                Some(snap) => match snap.resume(&program) {
                    Ok(mut m) => {
                        println!(
                            "(resuming from checkpoint: {} applications, {} atoms, {} pending)",
                            snap.stats().applications,
                            snap.atoms(),
                            snap.pending()
                        );
                        if let Some(sink) = sink {
                            // Sequence numbers continue from the restored
                            // stats (see `engine::trace::core_seq`).
                            m.set_trace_sink(sink);
                            m.trace_note(TraceEvent::CheckpointResume {
                                applications: snap.stats().applications,
                                atoms: snap.atoms(),
                                pending: snap.pending(),
                            });
                        }
                        m
                    }
                    Err(e) => {
                        eprintln!("cannot resume checkpoint: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    let initial = if program.facts().is_empty() {
                        println!("(no facts in file: chasing the critical instance)");
                        CriticalInstance::build(&mut program).instance
                    } else {
                        Instance::from_atoms(program.facts().iter().cloned())
                    };
                    match sink {
                        Some(sink) => ChaseMachine::new_with_trace(&program, cfg, initial, sink),
                        None => ChaseMachine::new(&program, cfg, initial),
                    }
                }
            };
            if let Some(path) = &args.journal {
                // A crashed journaled run leaves unreplayed records; refuse
                // to truncate them (that would silently discard the very
                // work the journal exists to preserve).
                let bytes = match std::fs::read(path) {
                    Ok(b) => b,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
                    Err(e) => {
                        eprintln!("cannot read journal {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if needs_recovery(&machine, &bytes) {
                    eprintln!(
                        "journal {path} holds unreplayed records from an interrupted run; \
                         run with --recover first (or delete the journal to discard that work)"
                    );
                    return ExitCode::FAILURE;
                }
                match JournalWriter::for_machine(std::path::Path::new(path), &machine) {
                    Ok(j) => machine.set_journal(j.with_flush_every(args.flush_every)),
                    Err(e) => {
                        eprintln!("cannot create journal {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if let Some(secs) = args.progress {
                machine.set_progress(
                    std::time::Duration::from_secs(secs),
                    Box::new(|r| {
                        eprintln!(
                            "progress: {} applications, {} atoms, {} pending, ~{} KiB, \
                             {:.0} apps/s ({:.0}s elapsed)",
                            r.applications,
                            r.atoms,
                            r.pending,
                            r.approx_bytes / 1024,
                            r.apps_per_sec,
                            r.elapsed_secs
                        );
                    }),
                );
            }

            // One overall wall-clock deadline, even when `--checkpoint-every`
            // splits the run into snapshot legs.
            let deadline = args
                .timeout_ms
                .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
            let outcome = loop {
                let target = match args.checkpoint_every {
                    Some(every) => {
                        machine.stats().applications.saturating_add(every).min(args.steps)
                    }
                    None => args.steps,
                };
                let mut budget = Budget::applications(target);
                if let Some(d) = deadline {
                    let left = d.saturating_duration_since(std::time::Instant::now());
                    budget = budget.with_timeout_ms(left.as_millis() as u64);
                }
                if let Some(bytes) = args.max_mem {
                    budget = budget.with_memory(bytes);
                }
                let stop = machine.run_parallel(&budget, args.threads);
                // A snapshot leg ended with overall budget to spare: publish
                // a periodic snapshot, re-base the journal, keep going.
                if stop == StopReason::Applications && target < args.steps {
                    let path = args.checkpoint.as_deref().expect("--checkpoint-every requires it");
                    if let Err(msg) = write_durable_snapshot(
                        &mut machine,
                        path,
                        args.journal.as_deref(),
                        args.flush_every,
                    ) {
                        eprintln!("{msg}");
                        return ExitCode::from(DURABILITY_FAILURE);
                    }
                    let (applications, atoms, pending) = (
                        machine.stats().applications,
                        machine.instance().len(),
                        machine.pending(),
                    );
                    machine.trace_note(TraceEvent::CheckpointWrite {
                        applications,
                        atoms,
                        pending,
                    });
                    continue;
                }
                break stop;
            };
            println!(
                "outcome: {} after {} applications, {} atoms, {} nulls (~{} KiB)",
                outcome,
                machine.stats().applications,
                machine.instance().len(),
                machine.stats().nulls_minted,
                machine.approx_memory_bytes() / 1024
            );

            if outcome == StopReason::Io {
                if let Some(msg) = machine.journal_failed() {
                    eprintln!("journal write failed: {msg}");
                }
                // The snapshot below supersedes the broken journal; don't
                // try to sync it (the sticky error would mask the snapshot).
                let _ = machine.take_journal();
            }
            if let Some(path) = &args.checkpoint {
                if outcome.exhausted() {
                    // Atomic publication even for plain `--checkpoint` runs:
                    // a kill mid-write can't tear the snapshot.
                    if let Err(msg) = write_durable_snapshot(
                        &mut machine,
                        path,
                        args.journal.as_deref(),
                        args.flush_every,
                    ) {
                        eprintln!("{msg}");
                        return ExitCode::from(DURABILITY_FAILURE);
                    }
                    let (applications, atoms, pending) =
                        (machine.stats().applications, machine.instance().len(), machine.pending());
                    machine.trace_note(TraceEvent::CheckpointWrite { applications, atoms, pending });
                    println!("checkpoint written to {path} (rerun to continue)");
                } else {
                    // The run finished: a stale checkpoint or journal would
                    // silently replay the old state on the next invocation,
                    // so a failed removal is a durability error, not noise.
                    if std::path::Path::new(path).exists() {
                        match std::fs::remove_file(path) {
                            Ok(()) => println!("run saturated: checkpoint {path} removed"),
                            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                            Err(e) => {
                                eprintln!("cannot remove stale checkpoint {path}: {e}");
                                return ExitCode::from(DURABILITY_FAILURE);
                            }
                        }
                    }
                    if let Some(journal) = &args.journal {
                        // Nothing left to recover either.
                        let _ = machine.take_journal();
                        match std::fs::remove_file(journal) {
                            Ok(()) => {}
                            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                            Err(e) => {
                                eprintln!("cannot remove stale journal {journal}: {e}");
                                return ExitCode::from(DURABILITY_FAILURE);
                            }
                        }
                    }
                }
            }

            if let Some(path) = &args.dot {
                let dot = chasekit::engine::derivation_to_dot(
                    machine.instance(),
                    machine.derivation(),
                    &program.vocab,
                );
                if let Err(e) = std::fs::write(path, dot) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("derivation DAG written to {path}");
            }
            machine.flush_trace();
            if let (Some(path), Some(registry)) = (&args.metrics, &registry) {
                use std::io::Write as _;
                let json = registry.lock().expect("metrics registry poisoned").to_json();
                let mut file = metrics_file.take().expect("metrics file was opened");
                if let Err(e) = file.write_all(json.as_bytes()) {
                    eprintln!("cannot write metrics file {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("metrics written to {path}");
            }

            print!("{}", instance_to_string(machine.instance(), &program.vocab));
            match outcome {
                StopReason::Saturated => ExitCode::SUCCESS,
                StopReason::Applications => ExitCode::from(10),
                StopReason::Atoms => ExitCode::from(11),
                StopReason::WallClock => ExitCode::from(12),
                StopReason::Memory => ExitCode::from(13),
                StopReason::Cancelled => ExitCode::from(14),
                StopReason::Io => ExitCode::from(15),
            }
        }
        "update" => {
            use chasekit::engine::{parse_edit_script, ChaseConfig, ChaseMachine};
            let mut program = program.clone();
            let script_path = args.edits.as_deref().expect("validated by parse_args");
            let script = match std::fs::read_to_string(script_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read edit script {script_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Parse (and intern new names) before the machine borrows the
            // program; the whole script is known up front.
            let edits = match parse_edit_script(&script, &mut program) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let cfg = ChaseConfig::of(args.variant).with_derivation();
            let initial = if program.facts().is_empty() {
                println!("(no facts in file: chasing the critical instance)");
                CriticalInstance::build(&mut program).instance
            } else {
                Instance::from_atoms(program.facts().iter().cloned())
            };
            let mut sinks: Vec<Box<dyn TraceSink>> = Vec::new();
            if let Some(path) = &args.trace {
                match std::fs::File::create(path) {
                    Ok(f) => sinks
                        .push(Box::new(JsonlSink::new(std::io::BufWriter::new(f), &program))),
                    Err(e) => {
                        eprintln!("cannot create trace file {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let mut metrics_file = None;
            let registry = if let Some(path) = &args.metrics {
                match std::fs::File::create(path) {
                    Ok(f) => metrics_file = Some(f),
                    Err(e) => {
                        eprintln!("cannot create metrics file {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                let ms = MetricsSink::new(&program);
                let reg = ms.registry();
                sinks.push(Box::new(ms));
                Some(reg)
            } else {
                None
            };
            let sink: Option<Box<dyn TraceSink>> = match sinks.len() {
                0 => None,
                1 => sinks.pop(),
                _ => Some(Box::new(MultiSink::new(sinks))),
            };
            let mut machine = match sink {
                Some(sink) => ChaseMachine::new_with_trace(&program, cfg, initial, sink),
                None => ChaseMachine::new(&program, cfg, initial),
            };
            let first = machine.run(&Budget::applications(args.steps));
            println!(
                "initial chase: {} after {} applications, {} atoms",
                first,
                machine.stats().applications,
                machine.instance().len()
            );
            // Budgets are cumulative over the machine: give the completion
            // chase its own `--steps` worth of applications.
            let total = machine.stats().applications.saturating_add(args.steps);
            let report = match machine.apply_edits(&edits, &Budget::applications(total)) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "edits: {} adds ({} already present), {} retracts ({} absent)",
                report.adds, report.duplicate_adds, report.retracts, report.missing_retracts
            );
            println!(
                "repair: {} atoms overdeleted, {} applications invalidated, \
                 {} re-fired, {} atoms restored, {} skips reopened",
                report.overdeleted,
                report.invalidated_apps,
                report.rederived_apps,
                report.restored_atoms,
                report.reopened_skips
            );
            println!(
                "outcome: {} after {} applications, {} atoms (~{} KiB)",
                report.outcome,
                machine.stats().applications,
                machine.instance().len(),
                machine.approx_memory_bytes() / 1024
            );
            if let Some(path) = &args.dot {
                let dot = chasekit::engine::derivation_to_dot(
                    machine.instance(),
                    machine.derivation(),
                    &program.vocab,
                );
                if let Err(e) = std::fs::write(path, dot) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("derivation DAG written to {path}");
            }
            machine.flush_trace();
            if let (Some(path), Some(registry)) = (&args.metrics, &registry) {
                use std::io::Write as _;
                let json = registry.lock().expect("metrics registry poisoned").to_json();
                let mut file = metrics_file.take().expect("metrics file was opened");
                if let Err(e) = file.write_all(json.as_bytes()) {
                    eprintln!("cannot write metrics file {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("metrics written to {path}");
            }
            print!("{}", instance_to_string(machine.instance(), &program.vocab));
            match report.outcome {
                StopReason::Saturated => ExitCode::SUCCESS,
                StopReason::Applications => ExitCode::from(10),
                StopReason::Atoms => ExitCode::from(11),
                StopReason::WallClock => ExitCode::from(12),
                StopReason::Memory => ExitCode::from(13),
                StopReason::Cancelled => ExitCode::from(14),
                StopReason::Io => ExitCode::from(15),
            }
        }
        "explain" => {
            use chasekit::core::display::atom_to_string;
            use chasekit::core::RuleClass;
            use chasekit::termination::{LinearAnalysis, Label as ShapeLabel};
            let variant = if args.variant == ChaseVariant::Restricted {
                ChaseVariant::SemiOblivious
            } else {
                args.variant
            };
            println!("class: {}", program.class());
            match program.class() {
                RuleClass::SimpleLinear | RuleClass::Linear => {
                    let analysis = LinearAnalysis::explore(&program, false)
                        .expect("class checked");
                    let (decision, witness) = analysis
                        .decide_with_witness(variant)
                        .expect("variant checked");
                    println!(
                        "reachable shapes: {}; overlay: {} nodes, {} edges",
                        decision.shapes, decision.position_nodes, decision.position_edges
                    );
                    match witness {
                        None => println!("no dangerous cycle: the {variant} chase terminates on all databases"),
                        Some(w) => {
                            let render = |s: &chasekit::termination::Shape| {
                                let labels: Vec<String> = s
                                    .labels
                                    .iter()
                                    .map(|l| match l {
                                        ShapeLabel::Const(c) => {
                                            program.vocab.const_name(*c).to_string()
                                        }
                                        ShapeLabel::Null(k) => format!("_:{k}"),
                                    })
                                    .collect();
                                format!(
                                    "{}({})",
                                    program.vocab.pred_name(s.pred),
                                    labels.join(", ")
                                )
                            };
                            println!("dangerous reachable cycle found:");
                            println!(
                                "  a null consumed at position {} of shape {}",
                                w.from_pos + 1,
                                render(&w.from_shape)
                            );
                            println!(
                                "  re-creates a fresh null at position {} of shape {}",
                                w.to_pos + 1,
                                render(&w.to_shape)
                            );
                            println!("=> the {variant} chase DIVERGES on some database");
                        }
                    }
                }
                _ => {
                    let mut cfg = GuardedConfig::new(variant);
                    cfg.max_applications = args.fuel;
                    match chasekit::termination::pumping_decide(&program, cfg) {
                        Ok(report) => match report.verdict {
                            GuardedVerdict::Terminates => println!(
                                "critical-instance chase saturated after {} applications: terminates on all databases",
                                report.stats.applications
                            ),
                            GuardedVerdict::Diverges(cert) => {
                                println!("pumping certificate found (chain length {}):", cert.chain_length);
                                println!(
                                    "  ancestor:   {}",
                                    atom_to_string(&cert.ancestor, &program.vocab, None)
                                );
                                println!(
                                    "  descendant: {}",
                                    atom_to_string(&cert.descendant, &program.vocab, None)
                                );
                                println!("=> the {variant} chase DIVERGES on some database");
                            }
                            GuardedVerdict::Unknown => println!(
                                "undecided within fuel ({} applications)",
                                args.fuel
                            ),
                        },
                        Err(e) => eprintln!("{e}"),
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "critical" => {
            let mut p = program.clone();
            let crit = if args.standard {
                CriticalInstance::standard(&mut p)
            } else {
                CriticalInstance::build(&mut p)
            };
            println!("constants: {}", crit.constants.len());
            print!("{}", instance_to_string(&crit.instance, &p.vocab));
            ExitCode::SUCCESS
        }
        other => arg_error(format!("unknown command `{other}`")),
    }
}
