//! `chasekit` — command-line front end.
//!
//! ```text
//! chasekit classify  <rules-file>
//! chasekit conditions <rules-file>
//! chasekit decide    <rules-file> [--variant o|so] [--fuel N]
//! chasekit explain   <rules-file> [--variant o|so]
//! chasekit chase     <rules-file> [--variant o|so|restricted] [--steps N] [--dot FILE]
//! chasekit critical  <rules-file> [--standard]
//! ```
//!
//! The rules file uses the textual format described in the README; facts in
//! the file seed the `chase` subcommand (the critical instance is used when
//! no facts are present).

use std::process::ExitCode;

use chasekit::core::display::{instance_to_string, rule_to_string};
use chasekit::prelude::*;

fn usage() -> ExitCode {
    eprintln!(
        "usage: chasekit <classify|conditions|decide|explain|chase|critical> <rules-file> [options]
options:
  --variant o|so|restricted   chase variant (default: so)
  --steps N                   chase step budget (default: 10000)
  --fuel N                    decision fuel (default: 50000)
  --standard                  use the standard-database critical instance
  --dot FILE                  (chase) write the derivation DAG as Graphviz"
    );
    ExitCode::from(2)
}

struct Args {
    command: String,
    file: String,
    variant: ChaseVariant,
    steps: u64,
    fuel: u64,
    standard: bool,
    dot: Option<String>,
}

fn parse_args() -> Option<Args> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next()?;
    let file = argv.next()?;
    let mut out = Args {
        command,
        file,
        variant: ChaseVariant::SemiOblivious,
        steps: 10_000,
        fuel: 50_000,
        standard: false,
        dot: None,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--variant" => {
                out.variant = match argv.next()?.as_str() {
                    "o" | "oblivious" => ChaseVariant::Oblivious,
                    "so" | "semi-oblivious" => ChaseVariant::SemiOblivious,
                    "restricted" | "standard" => ChaseVariant::Restricted,
                    other => {
                        eprintln!("unknown variant `{other}`");
                        return None;
                    }
                }
            }
            "--steps" => out.steps = argv.next()?.parse().ok()?,
            "--fuel" => out.fuel = argv.next()?.parse().ok()?,
            "--standard" => out.standard = true,
            "--dot" => out.dot = Some(argv.next()?),
            other => {
                eprintln!("unknown flag `{other}`");
                return None;
            }
        }
    }
    Some(out)
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return usage();
    };
    let text = match std::fs::read_to_string(&args.file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let program = match Program::parse(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    match args.command.as_str() {
        "classify" => {
            println!("rules: {}", program.rules().len());
            println!("facts: {}", program.facts().len());
            println!("class: {}", program.class());
            for (i, rule) in program.rules().iter().enumerate() {
                println!(
                    "  [{i}] {} ({}{}{})",
                    rule_to_string(rule, &program.vocab),
                    if rule.is_simple_linear() {
                        "simple-linear"
                    } else if rule.is_linear() {
                        "linear"
                    } else if rule.is_guarded() {
                        "guarded"
                    } else {
                        "unrestricted"
                    },
                    if rule.is_datalog() { ", datalog" } else { "" },
                    if rule.is_single_head() { "" } else { ", multi-head" },
                );
            }
            ExitCode::SUCCESS
        }
        "conditions" => {
            println!("weak acyclicity (WA):   {}", is_weakly_acyclic(&program));
            println!("rich acyclicity (RA):   {}", is_richly_acyclic(&program));
            println!("joint acyclicity (JA):  {}", is_jointly_acyclic(&program));
            println!("aGRD:                   {}", is_grd_acyclic(&program));
            println!(
                "MFA:                    {}",
                match is_mfa(&program) {
                    Some(b) => b.to_string(),
                    None => "unknown (fuel)".to_string(),
                }
            );
            ExitCode::SUCCESS
        }
        "decide" => {
            if args.variant == ChaseVariant::Restricted {
                let v = restricted_verdict(&program);
                println!("restricted chase on all databases: {:?} via {:?}", v.terminates, v.method);
                return ExitCode::SUCCESS;
            }
            let budget = Budget { max_applications: args.fuel, max_atoms: usize::MAX };
            let d = decide(&program, args.variant, &budget);
            println!("class:  {}", d.class);
            println!("method: {:?}", d.method);
            match d.terminates {
                Some(true) => println!("the {} chase TERMINATES on all databases", args.variant),
                Some(false) => println!("the {} chase DIVERGES on some database", args.variant),
                None => println!("undecided within fuel ({} applications)", args.fuel),
            }
            ExitCode::SUCCESS
        }
        "chase" => {
            let mut program = program.clone();
            let initial = if program.facts().is_empty() {
                println!("(no facts in file: chasing the critical instance)");
                CriticalInstance::build(&mut program).instance
            } else {
                Instance::from_atoms(program.facts().iter().cloned())
            };
            use chasekit::engine::{ChaseConfig, ChaseMachine};
            let mut cfg = ChaseConfig::of(args.variant);
            if args.dot.is_some() {
                cfg = cfg.with_derivation();
            }
            let mut machine = ChaseMachine::new(&program, cfg, initial);
            let outcome = machine.run(&Budget::applications(args.steps));
            println!(
                "outcome: {:?} after {} applications, {} atoms, {} nulls",
                outcome,
                machine.stats().applications,
                machine.instance().len(),
                machine.stats().nulls_minted
            );
            if let Some(path) = &args.dot {
                let dot = chasekit::engine::derivation_to_dot(
                    machine.instance(),
                    machine.derivation(),
                    &program.vocab,
                );
                if let Err(e) = std::fs::write(path, dot) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("derivation DAG written to {path}");
            }
            print!("{}", instance_to_string(machine.instance(), &program.vocab));
            ExitCode::SUCCESS
        }
        "explain" => {
            use chasekit::core::display::atom_to_string;
            use chasekit::core::RuleClass;
            use chasekit::termination::{LinearAnalysis, Label as ShapeLabel};
            let variant = if args.variant == ChaseVariant::Restricted {
                ChaseVariant::SemiOblivious
            } else {
                args.variant
            };
            println!("class: {}", program.class());
            match program.class() {
                RuleClass::SimpleLinear | RuleClass::Linear => {
                    let analysis = LinearAnalysis::explore(&program, false)
                        .expect("class checked");
                    let (decision, witness) = analysis
                        .decide_with_witness(variant)
                        .expect("variant checked");
                    println!(
                        "reachable shapes: {}; overlay: {} nodes, {} edges",
                        decision.shapes, decision.position_nodes, decision.position_edges
                    );
                    match witness {
                        None => println!("no dangerous cycle: the {variant} chase terminates on all databases"),
                        Some(w) => {
                            let render = |s: &chasekit::termination::Shape| {
                                let labels: Vec<String> = s
                                    .labels
                                    .iter()
                                    .map(|l| match l {
                                        ShapeLabel::Const(c) => {
                                            program.vocab.const_name(*c).to_string()
                                        }
                                        ShapeLabel::Null(k) => format!("_:{k}"),
                                    })
                                    .collect();
                                format!(
                                    "{}({})",
                                    program.vocab.pred_name(s.pred),
                                    labels.join(", ")
                                )
                            };
                            println!("dangerous reachable cycle found:");
                            println!(
                                "  a null consumed at position {} of shape {}",
                                w.from_pos + 1,
                                render(&w.from_shape)
                            );
                            println!(
                                "  re-creates a fresh null at position {} of shape {}",
                                w.to_pos + 1,
                                render(&w.to_shape)
                            );
                            println!("=> the {variant} chase DIVERGES on some database");
                        }
                    }
                }
                _ => {
                    let mut cfg = GuardedConfig::new(variant);
                    cfg.max_applications = args.fuel;
                    match chasekit::termination::pumping_decide(&program, cfg) {
                        Ok(report) => match report.verdict {
                            GuardedVerdict::Terminates => println!(
                                "critical-instance chase saturated after {} applications: terminates on all databases",
                                report.stats.applications
                            ),
                            GuardedVerdict::Diverges(cert) => {
                                println!("pumping certificate found (chain length {}):", cert.chain_length);
                                println!(
                                    "  ancestor:   {}",
                                    atom_to_string(&cert.ancestor, &program.vocab, None)
                                );
                                println!(
                                    "  descendant: {}",
                                    atom_to_string(&cert.descendant, &program.vocab, None)
                                );
                                println!("=> the {variant} chase DIVERGES on some database");
                            }
                            GuardedVerdict::Unknown => println!(
                                "undecided within fuel ({} applications)",
                                args.fuel
                            ),
                        },
                        Err(e) => eprintln!("{e}"),
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "critical" => {
            let mut p = program.clone();
            let crit = if args.standard {
                CriticalInstance::standard(&mut p)
            } else {
                CriticalInstance::build(&mut p)
            };
            println!("constants: {}", crit.constants.len());
            print!("{}", instance_to_string(&crit.instance, &p.vocab));
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
