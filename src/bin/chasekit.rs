//! `chasekit` — command-line front end.
//!
//! ```text
//! chasekit classify  <rules-file>
//! chasekit conditions <rules-file>
//! chasekit decide    <rules-file> [--variant o|so] [--fuel N]
//! chasekit explain   <rules-file> [--variant o|so]
//! chasekit chase     <rules-file> [--variant o|so|restricted] [--steps N] [--dot FILE]
//!                    [--timeout-ms N] [--max-atoms-mem BYTES] [--checkpoint FILE]
//!                    [--threads N] [--trace FILE] [--metrics FILE] [--progress SECS]
//! chasekit critical  <rules-file> [--standard]
//! ```
//!
//! The rules file uses the textual format described in the README; facts in
//! the file seed the `chase` subcommand (the critical instance is used when
//! no facts are present).
//!
//! ## Exit codes
//!
//! `chase` maps its [`StopReason`] to a distinct exit code so scripts can
//! tell *why* a run stopped: 0 saturated, 10 application budget, 11 atom
//! budget, 12 wall-clock deadline, 13 memory ceiling, 14 cancelled.
//! Argument errors exit 2; file/parse errors exit 1.

use std::process::ExitCode;

use chasekit::core::display::{instance_to_string, rule_to_string};
use chasekit::engine::{
    Checkpoint, JsonlSink, MetricsSink, MultiSink, StopReason, TraceEvent, TraceSink,
};
use chasekit::prelude::*;

const USAGE: &str = "usage: chasekit <classify|conditions|decide|explain|chase|critical> <rules-file> [options]
options:
  --variant o|so|restricted   chase variant (default: so)
  --steps N                   chase step budget (default: 10000)
  --fuel N                    decision fuel (default: 50000)
  --standard                  use the standard-database critical instance
  --dot FILE                  (chase) write the derivation DAG as Graphviz
  --timeout-ms N              (chase) wall-clock deadline in milliseconds
  --max-atoms-mem BYTES       (chase) approximate memory ceiling in bytes
  --checkpoint FILE           (chase) resume from FILE if present; write the
                              run state back there when a guardrail stops it
  --threads N                 (chase) worker threads for parallel-round
                              execution (default: 1 = sequential); results
                              are bit-identical at every thread count
  --trace FILE                (chase) write a JSONL event trace; composes
                              with --checkpoint (sequence numbers continue
                              across resume) and every --threads count
  --metrics FILE              (chase) write a metrics-registry JSON report
                              (counters, histograms, per-rule/per-predicate)
  --progress SECS             (chase) print a progress line to stderr at
                              most every SECS seconds (SECS >= 1)
exit codes (chase): 0 saturated, 10 applications, 11 atoms, 12 wall-clock,
                    13 memory, 14 cancelled";

/// A named argument error: says exactly which argument was bad and why.
fn arg_error(msg: String) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

struct Args {
    command: String,
    file: String,
    variant: ChaseVariant,
    steps: u64,
    fuel: u64,
    standard: bool,
    dot: Option<String>,
    timeout_ms: Option<u64>,
    max_mem: Option<usize>,
    checkpoint: Option<String>,
    threads: usize,
    trace: Option<String>,
    metrics: Option<String>,
    progress: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or("missing <command> argument")?;
    let known = ["classify", "conditions", "decide", "explain", "chase", "critical"];
    if !known.contains(&command.as_str()) {
        return Err(format!(
            "unknown command `{command}` (expected one of: {})",
            known.join(", ")
        ));
    }
    let file = argv.next().ok_or_else(|| format!("`{command}` needs a <rules-file> argument"))?;
    let mut out = Args {
        command,
        file,
        variant: ChaseVariant::SemiOblivious,
        steps: 10_000,
        fuel: 50_000,
        standard: false,
        dot: None,
        timeout_ms: None,
        max_mem: None,
        checkpoint: None,
        threads: 1,
        trace: None,
        metrics: None,
        progress: None,
    };
    // A flag's value, or a named error if the command line ends first.
    fn value(argv: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
        argv.next().ok_or_else(|| format!("`{flag}` requires a value"))
    }
    // A flag's numeric value, naming the flag and the offending text.
    fn number<T: std::str::FromStr>(
        argv: &mut impl Iterator<Item = String>,
        flag: &str,
    ) -> Result<T, String> {
        let raw = value(argv, flag)?;
        raw.parse()
            .map_err(|_| format!("`{flag}` expects a non-negative integer, got `{raw}`"))
    }
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--variant" => {
                let raw = value(&mut argv, "--variant")?;
                out.variant = match raw.as_str() {
                    "o" | "oblivious" => ChaseVariant::Oblivious,
                    "so" | "semi-oblivious" => ChaseVariant::SemiOblivious,
                    "restricted" | "standard" => ChaseVariant::Restricted,
                    other => {
                        return Err(format!(
                            "`--variant` expects o|so|restricted, got `{other}`"
                        ))
                    }
                }
            }
            "--steps" => out.steps = number(&mut argv, "--steps")?,
            "--fuel" => out.fuel = number(&mut argv, "--fuel")?,
            "--standard" => out.standard = true,
            "--dot" => out.dot = Some(value(&mut argv, "--dot")?),
            "--timeout-ms" => out.timeout_ms = Some(number(&mut argv, "--timeout-ms")?),
            "--max-atoms-mem" => out.max_mem = Some(number(&mut argv, "--max-atoms-mem")?),
            "--checkpoint" => out.checkpoint = Some(value(&mut argv, "--checkpoint")?),
            "--threads" => {
                out.threads = number(&mut argv, "--threads")?;
                if out.threads == 0 {
                    return Err("`--threads` expects a positive integer, got `0`".to_string());
                }
            }
            "--trace" => out.trace = Some(value(&mut argv, "--trace")?),
            "--metrics" => out.metrics = Some(value(&mut argv, "--metrics")?),
            "--progress" => {
                let secs: u64 = number(&mut argv, "--progress")?;
                if secs == 0 {
                    return Err(
                        "`--progress` expects a positive number of seconds, got `0`".to_string()
                    );
                }
                out.progress = Some(secs);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if out.checkpoint.is_some() && out.dot.is_some() {
        return Err(
            "`--checkpoint` cannot be combined with `--dot` \
             (derivation tracking is not checkpointable)"
                .to_string(),
        );
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => return arg_error(msg),
    };
    let text = match std::fs::read_to_string(&args.file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let program = match Program::parse(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    match args.command.as_str() {
        "classify" => {
            println!("rules: {}", program.rules().len());
            println!("facts: {}", program.facts().len());
            println!("class: {}", program.class());
            for (i, rule) in program.rules().iter().enumerate() {
                println!(
                    "  [{i}] {} ({}{}{})",
                    rule_to_string(rule, &program.vocab),
                    if rule.is_simple_linear() {
                        "simple-linear"
                    } else if rule.is_linear() {
                        "linear"
                    } else if rule.is_guarded() {
                        "guarded"
                    } else {
                        "unrestricted"
                    },
                    if rule.is_datalog() { ", datalog" } else { "" },
                    if rule.is_single_head() { "" } else { ", multi-head" },
                );
            }
            ExitCode::SUCCESS
        }
        "conditions" => {
            use chasekit::acyclicity::{check_with_work, GraphKind};
            use chasekit::termination::mfa_report;
            let (wa, wa_work) = check_with_work(&program, GraphKind::Standard);
            let (ra, ra_work) = check_with_work(&program, GraphKind::Extended);
            println!(
                "weak acyclicity (WA):   {} [{} nodes, {} edges, {} special]",
                wa.is_acyclic(),
                wa_work.nodes,
                wa_work.edges,
                wa_work.special_edges
            );
            println!(
                "rich acyclicity (RA):   {} [{} nodes, {} edges, {} special]",
                ra.is_acyclic(),
                ra_work.nodes,
                ra_work.edges,
                ra_work.special_edges
            );
            println!("joint acyclicity (JA):  {}", is_jointly_acyclic(&program));
            println!("aGRD:                   {}", is_grd_acyclic(&program));
            let mfa = mfa_report(&program, &Budget::default());
            println!(
                "MFA:                    {} [{} applications, {} atoms]",
                match mfa.status.is_mfa() {
                    Some(b) => b.to_string(),
                    None => "unknown (fuel)".to_string(),
                },
                mfa.applications,
                mfa.atoms
            );
            ExitCode::SUCCESS
        }
        "decide" => {
            if args.variant == ChaseVariant::Restricted {
                let v = restricted_verdict(&program);
                println!("restricted chase on all databases: {:?} via {:?}", v.terminates, v.method);
                return ExitCode::SUCCESS;
            }
            let budget = Budget::applications(args.fuel);
            let d = decide(&program, args.variant, &budget);
            println!("class:  {}", d.class);
            println!("method: {:?}", d.method);
            match d.terminates {
                Some(true) => println!("the {} chase TERMINATES on all databases", args.variant),
                Some(false) => println!("the {} chase DIVERGES on some database", args.variant),
                None => println!("undecided within fuel ({} applications)", args.fuel),
            }
            ExitCode::SUCCESS
        }
        "chase" => {
            let mut program = program.clone();
            use chasekit::engine::{ChaseConfig, ChaseMachine};
            let mut cfg = ChaseConfig::of(args.variant);
            if args.dot.is_some() {
                cfg = cfg.with_derivation();
            }

            // Observability outputs are opened before any chase work so a
            // bad path fails fast (exit 1), not after a long run.
            let trace_out = match &args.trace {
                Some(path) => match std::fs::File::create(path) {
                    Ok(f) => Some(std::io::BufWriter::new(f)),
                    Err(e) => {
                        eprintln!("cannot create trace file {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => None,
            };
            let mut metrics_file = match &args.metrics {
                Some(path) => match std::fs::File::create(path) {
                    Ok(f) => Some(f),
                    Err(e) => {
                        eprintln!("cannot create metrics file {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => None,
            };
            let mut sinks: Vec<Box<dyn TraceSink>> = Vec::new();
            if let Some(out) = trace_out {
                sinks.push(Box::new(JsonlSink::new(out, &program)));
            }
            let registry = if metrics_file.is_some() {
                let ms = MetricsSink::new(&program);
                let reg = ms.registry();
                sinks.push(Box::new(ms));
                Some(reg)
            } else {
                None
            };
            let sink: Option<Box<dyn TraceSink>> = match sinks.len() {
                0 => None,
                1 => sinks.pop(),
                _ => Some(Box::new(MultiSink::new(sinks))),
            };

            // Resume from a checkpoint file when one exists; otherwise start
            // fresh (from the file's facts or the critical instance).
            let resumed = match &args.checkpoint {
                Some(path) if std::path::Path::new(path).exists() => {
                    let text = match std::fs::read_to_string(path) {
                        Ok(t) => t,
                        Err(e) => {
                            eprintln!("cannot read checkpoint {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    match Checkpoint::from_text(&text) {
                        Ok(snap) => Some(snap),
                        Err(e) => {
                            eprintln!("cannot load checkpoint {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                _ => None,
            };

            let mut machine = match &resumed {
                Some(snap) => match snap.resume(&program) {
                    Ok(mut m) => {
                        println!(
                            "(resuming from checkpoint: {} applications, {} atoms, {} pending)",
                            snap.stats().applications,
                            snap.atoms(),
                            snap.pending()
                        );
                        if let Some(sink) = sink {
                            // Sequence numbers continue from the restored
                            // stats (see `engine::trace::core_seq`).
                            m.set_trace_sink(sink);
                            m.trace_note(TraceEvent::CheckpointResume {
                                applications: snap.stats().applications,
                                atoms: snap.atoms(),
                                pending: snap.pending(),
                            });
                        }
                        m
                    }
                    Err(e) => {
                        eprintln!("cannot resume checkpoint: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    let initial = if program.facts().is_empty() {
                        println!("(no facts in file: chasing the critical instance)");
                        CriticalInstance::build(&mut program).instance
                    } else {
                        Instance::from_atoms(program.facts().iter().cloned())
                    };
                    match sink {
                        Some(sink) => ChaseMachine::new_with_trace(&program, cfg, initial, sink),
                        None => ChaseMachine::new(&program, cfg, initial),
                    }
                }
            };
            if let Some(secs) = args.progress {
                machine.set_progress(
                    std::time::Duration::from_secs(secs),
                    Box::new(|r| {
                        eprintln!(
                            "progress: {} applications, {} atoms, {} pending, ~{} KiB, \
                             {:.0} apps/s ({:.0}s elapsed)",
                            r.applications,
                            r.atoms,
                            r.pending,
                            r.approx_bytes / 1024,
                            r.apps_per_sec,
                            r.elapsed_secs
                        );
                    }),
                );
            }

            let mut budget = Budget::applications(args.steps);
            if let Some(ms) = args.timeout_ms {
                budget = budget.with_timeout_ms(ms);
            }
            if let Some(bytes) = args.max_mem {
                budget = budget.with_memory(bytes);
            }
            let outcome = machine.run_parallel(&budget, args.threads);
            println!(
                "outcome: {} after {} applications, {} atoms, {} nulls (~{} KiB)",
                outcome,
                machine.stats().applications,
                machine.instance().len(),
                machine.stats().nulls_minted,
                machine.approx_memory_bytes() / 1024
            );

            if let Some(path) = &args.checkpoint {
                if outcome.exhausted() {
                    let text = match machine.snapshot().to_text() {
                        Ok(t) => t,
                        Err(e) => {
                            eprintln!("cannot checkpoint run: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    if let Err(e) = std::fs::write(path, text) {
                        eprintln!("cannot write checkpoint {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    let (applications, atoms, pending) =
                        (machine.stats().applications, machine.instance().len(), machine.pending());
                    machine.trace_note(TraceEvent::CheckpointWrite { applications, atoms, pending });
                    println!("checkpoint written to {path} (rerun to continue)");
                } else if std::path::Path::new(path).exists() {
                    // The run finished: a stale checkpoint would silently
                    // replay the old state on the next invocation.
                    let _ = std::fs::remove_file(path);
                    println!("run saturated: checkpoint {path} removed");
                }
            }

            if let Some(path) = &args.dot {
                let dot = chasekit::engine::derivation_to_dot(
                    machine.instance(),
                    machine.derivation(),
                    &program.vocab,
                );
                if let Err(e) = std::fs::write(path, dot) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("derivation DAG written to {path}");
            }
            machine.flush_trace();
            if let (Some(path), Some(registry)) = (&args.metrics, &registry) {
                use std::io::Write as _;
                let json = registry.lock().expect("metrics registry poisoned").to_json();
                let mut file = metrics_file.take().expect("metrics file was opened");
                if let Err(e) = file.write_all(json.as_bytes()) {
                    eprintln!("cannot write metrics file {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("metrics written to {path}");
            }

            print!("{}", instance_to_string(machine.instance(), &program.vocab));
            match outcome {
                StopReason::Saturated => ExitCode::SUCCESS,
                StopReason::Applications => ExitCode::from(10),
                StopReason::Atoms => ExitCode::from(11),
                StopReason::WallClock => ExitCode::from(12),
                StopReason::Memory => ExitCode::from(13),
                StopReason::Cancelled => ExitCode::from(14),
            }
        }
        "explain" => {
            use chasekit::core::display::atom_to_string;
            use chasekit::core::RuleClass;
            use chasekit::termination::{LinearAnalysis, Label as ShapeLabel};
            let variant = if args.variant == ChaseVariant::Restricted {
                ChaseVariant::SemiOblivious
            } else {
                args.variant
            };
            println!("class: {}", program.class());
            match program.class() {
                RuleClass::SimpleLinear | RuleClass::Linear => {
                    let analysis = LinearAnalysis::explore(&program, false)
                        .expect("class checked");
                    let (decision, witness) = analysis
                        .decide_with_witness(variant)
                        .expect("variant checked");
                    println!(
                        "reachable shapes: {}; overlay: {} nodes, {} edges",
                        decision.shapes, decision.position_nodes, decision.position_edges
                    );
                    match witness {
                        None => println!("no dangerous cycle: the {variant} chase terminates on all databases"),
                        Some(w) => {
                            let render = |s: &chasekit::termination::Shape| {
                                let labels: Vec<String> = s
                                    .labels
                                    .iter()
                                    .map(|l| match l {
                                        ShapeLabel::Const(c) => {
                                            program.vocab.const_name(*c).to_string()
                                        }
                                        ShapeLabel::Null(k) => format!("_:{k}"),
                                    })
                                    .collect();
                                format!(
                                    "{}({})",
                                    program.vocab.pred_name(s.pred),
                                    labels.join(", ")
                                )
                            };
                            println!("dangerous reachable cycle found:");
                            println!(
                                "  a null consumed at position {} of shape {}",
                                w.from_pos + 1,
                                render(&w.from_shape)
                            );
                            println!(
                                "  re-creates a fresh null at position {} of shape {}",
                                w.to_pos + 1,
                                render(&w.to_shape)
                            );
                            println!("=> the {variant} chase DIVERGES on some database");
                        }
                    }
                }
                _ => {
                    let mut cfg = GuardedConfig::new(variant);
                    cfg.max_applications = args.fuel;
                    match chasekit::termination::pumping_decide(&program, cfg) {
                        Ok(report) => match report.verdict {
                            GuardedVerdict::Terminates => println!(
                                "critical-instance chase saturated after {} applications: terminates on all databases",
                                report.stats.applications
                            ),
                            GuardedVerdict::Diverges(cert) => {
                                println!("pumping certificate found (chain length {}):", cert.chain_length);
                                println!(
                                    "  ancestor:   {}",
                                    atom_to_string(&cert.ancestor, &program.vocab, None)
                                );
                                println!(
                                    "  descendant: {}",
                                    atom_to_string(&cert.descendant, &program.vocab, None)
                                );
                                println!("=> the {variant} chase DIVERGES on some database");
                            }
                            GuardedVerdict::Unknown => println!(
                                "undecided within fuel ({} applications)",
                                args.fuel
                            ),
                        },
                        Err(e) => eprintln!("{e}"),
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "critical" => {
            let mut p = program.clone();
            let crit = if args.standard {
                CriticalInstance::standard(&mut p)
            } else {
                CriticalInstance::build(&mut p)
            };
            println!("constants: {}", crit.constants.len());
            print!("{}", instance_to_string(&crit.instance, &p.vocab));
            ExitCode::SUCCESS
        }
        other => arg_error(format!("unknown command `{other}`")),
    }
}
