//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the few entry points it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]) and the [`Rng`] methods
//! `gen_range`, `gen_bool`, and `gen`. The generator is xoshiro256**
//! seeded through splitmix64 — high-quality and stable across releases,
//! which is all the seeded experiment populations require (they need
//! determinism in the seed, not bit-compatibility with upstream rand).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: seeding from a `u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a `Range`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[low, high)` using words from `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as u128) - (low as u128);
                // Multiply-shift bounded sampling; the tiny modulo bias of
                // plain `% span` is irrelevant here but this avoids it.
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                low + ((wide >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128;
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                ((low as i128) + ((wide >> 64) as i128)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Types with a "standard" uniform distribution for [`Rng::gen`].
pub trait Standard {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The user-facing sampling methods, blanket-implemented for every core
/// generator.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::draw(self) < p
    }

    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via splitmix64.
    ///
    /// Drop-in for `rand::rngs::StdRng` in seeded, reproducible workloads.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small generator is the same xoshiro core here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let a_vals: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let c_vals: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_ne!(a_vals, c_vals);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits: {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
