//! The case-running loop: configuration, rejection accounting, and the
//! deterministic random source behind every strategy.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
    /// Give up after this many rejections across the whole run.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected (e.g. `prop_assume!`); it is skipped.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Convenience constructor mirroring upstream.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    /// Convenience constructor mirroring upstream.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The random source strategies draw from.
#[derive(Debug, Clone)]
pub struct TestRunner {
    rng: StdRng,
}

const DEFAULT_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

impl TestRunner {
    /// A runner with the given configuration. The seed is fixed (override
    /// with the `PROPTEST_SEED` environment variable) so failures
    /// reproduce across runs.
    pub fn new(_config: ProptestConfig) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        TestRunner { rng: StdRng::seed_from_u64(seed) }
    }

    /// A deterministic runner with default configuration.
    pub fn deterministic() -> Self {
        TestRunner { rng: StdRng::seed_from_u64(DEFAULT_SEED) }
    }

    /// The next raw 64-bit word.
    pub fn next_word(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A value in `[0, bound)` (`bound` > 0).
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        self.rng.gen_range(0..bound)
    }

    /// A usize in `[lo, hi)`.
    pub fn pick_usize(&mut self, lo: usize, hi: usize) -> usize {
        if lo + 1 >= hi {
            return lo;
        }
        self.rng.gen_range(lo..hi)
    }

    /// A character for string fuzzing: mostly printable ASCII, with
    /// whitespace, quotes, and the occasional multi-byte codepoint mixed
    /// in to stress parsers.
    pub fn fuzz_char(&mut self) -> char {
        match self.rng.gen_range(0u32..20) {
            0 => '\n',
            1 => '\t',
            2 => '\'',
            3 => '(',
            4 => ')',
            5 => ',',
            6 => '.',
            7 => '-',
            8 => '>',
            9 => char::from_u32(self.rng.gen_range(0x80u32..0x2500))
                .unwrap_or('\u{fffd}'),
            _ => char::from(self.rng.gen_range(0x20u8..0x7f)),
        }
    }
}

/// Runs `case` until `config.cases` cases pass, a case fails, or the
/// global rejection budget is spent. Panics on failure (no shrinking).
pub fn run_proptest(
    config: ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRunner) -> Result<(), TestCaseError>,
) {
    let mut runner = TestRunner::new(config.clone());
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < config.cases {
        match case(&mut runner) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected >= config.max_global_rejects {
                    // Upstream aborts the test here; accepting a partial
                    // run keeps heavily-filtered properties usable.
                    eprintln!(
                        "proptest {name}: gave up after {rejected} rejects \
                         ({accepted}/{} cases ran)",
                        config.cases
                    );
                    return;
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest {name}: case {} failed (after {rejected} rejects):\n{msg}",
                    accepted + 1
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_draws_cover_the_range() {
        let mut r = TestRunner::deterministic();
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.next_bounded(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn runner_is_deterministic() {
        let mut a = TestRunner::deterministic();
        let mut b = TestRunner::deterministic();
        for _ in 0..64 {
            assert_eq!(a.next_word(), b.next_word());
        }
    }

    #[test]
    fn rejection_budget_is_respected() {
        let config = ProptestConfig { cases: 10, max_global_rejects: 50 };
        let mut calls = 0;
        run_proptest(config, "always_rejects", |_| {
            calls += 1;
            Err(TestCaseError::reject("nope"))
        });
        assert_eq!(calls, 50);
    }
}
