//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the surface its property tests actually use: the
//! [`proptest!`] macro, `prop_assert*` / [`prop_assume!`], [`prop_oneof!`],
//! [`strategy::Just`], integer-range and string strategies, `prop_map`,
//! [`collection::vec`], and the [`strategy::ValueTree`] /
//! [`test_runner::TestRunner`] entry points.
//!
//! The one intentional difference from upstream: **no shrinking**. A
//! failing case panics with the generated inputs' debug representation
//! instead of a minimized counterexample. Generation is deterministic (a
//! fixed seed, overridable via `PROPTEST_SEED`), so failures reproduce.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use std::ops::Range;

    /// A size specification: an exact length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for vectors with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            let len = runner.pick_usize(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// `any::<T>()` support for the handful of types the workspace uses.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for the type.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Uniform `bool` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, runner: &mut TestRunner) -> bool {
            runner.pick_usize(0, 2) == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! arbitrary_uint {
        ($($t:ty => $name:ident),*) => {$(
            /// Full-range integer strategy.
            #[derive(Debug, Clone, Copy)]
            pub struct $name;

            impl Strategy for $name {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.next_word() as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = $name;
                fn arbitrary() -> $name { $name }
            }
        )*};
    }

    arbitrary_uint!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64, usize => AnyUsize);
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy, ValueTree};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Entry point macro: a block of property test functions.
///
/// Supports the upstream form used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, v in proptest::collection::vec(any::<bool>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_proptest(config, stringify!($name), |__runner| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __runner);)+
                (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+), left, right
        );
    }};
}

/// Fails the current test case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
}

/// Rejects the current test case (it counts as skipped, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs_generate_in_bounds(
            n in 1usize..10,
            flags in crate::collection::vec(any::<bool>(), 0..25),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(flags.len() < 25);
        }

        #[test]
        fn oneof_and_map_compose(
            word in prop_oneof![Just("a".to_string()), Just("b".to_string())],
            doubled in (0usize..5).prop_map(|x| x * 2),
        ) {
            prop_assert!(word == "a" || word == "b");
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(doubled, 11);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn string_strategy_respects_length_bounds() {
        use crate::strategy::{Strategy, ValueTree};
        let mut runner = TestRunner::deterministic();
        for _ in 0..50 {
            let s = ".{0,20}".new_tree(&mut runner).unwrap().current();
            assert!(s.chars().count() <= 20);
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_property_panics() {
        run_failing();
    }

    fn run_failing() {
        crate::test_runner::run_proptest(
            ProptestConfig::with_cases(4),
            "always_fails",
            |_runner| Err(TestCaseError::Fail("intentional".into())),
        );
    }
}
