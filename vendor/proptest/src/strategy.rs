//! Strategies: value generators (this subset does not shrink).

use crate::test_runner::TestRunner;
use std::marker::PhantomData;
use std::ops::Range;

/// A generator of values of one type.
///
/// Upstream proptest separates generation (`new_tree`) from the shrink
/// tree; here a "tree" is just the generated value, so [`Strategy`] is a
/// plain generator with an adapter that satisfies the `new_tree` API.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates values until one satisfies `f` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { base: self, whence, f }
    }

    /// Upstream-compatible entry point: wraps one generated value.
    fn new_tree(&self, runner: &mut TestRunner) -> Result<NoShrink<Self::Value>, String> {
        Ok(NoShrink(self.generate(runner)))
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A generated value presented through the upstream `ValueTree` API.
pub trait ValueTree {
    /// The type of the held value.
    type Value;
    /// The current (and only — no shrinking) value.
    fn current(&self) -> Self::Value;
}

/// A value tree that never shrinks.
#[derive(Debug, Clone)]
pub struct NoShrink<T>(pub T);

impl<T: Clone> ValueTree for NoShrink<T> {
    type Value = T;
    fn current(&self) -> T {
        self.0.clone()
    }
}

/// Strategy that always yields a fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.base.generate(runner))
    }
}

/// `prop_filter` adapter.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, runner: &mut TestRunner) -> S::Value {
        for _ in 0..1_000 {
            let v = self.base.generate(runner);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates in a row", self.whence);
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, runner: &mut TestRunner) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, runner: &mut TestRunner) -> S::Value {
        self.generate(runner)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        self.0.dyn_generate(runner)
    }
}

/// Uniform choice among same-typed strategies (the [`crate::prop_oneof!`]
/// backing type).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        let idx = runner.pick_usize(0, self.arms.len());
        self.arms[idx].generate(runner)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (runner.next_bounded(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + runner.next_bounded(span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.generate(runner),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// String strategy from a (tiny) regex subset: `&'static str` patterns of
/// the form `.{lo,hi}` generate strings of `lo..=hi` random characters;
/// anything else falls back to short random strings. This covers the
/// "arbitrary fuzz input" use, which is all the workspace needs.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, runner: &mut TestRunner) -> String {
        let (lo, hi) = parse_dot_repetition(self).unwrap_or((0, 32));
        let len = runner.pick_usize(lo, hi + 1);
        (0..len).map(|_| runner.fuzz_char()).collect()
    }
}

/// Parses `.{lo,hi}`; returns `None` for any other pattern.
fn parse_dot_repetition(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

#[allow(dead_code)]
fn _assertions(_: PhantomData<()>) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRunner;

    #[test]
    fn dot_repetition_parses() {
        assert_eq!(parse_dot_repetition(".{0,200}"), Some((0, 200)));
        assert_eq!(parse_dot_repetition(".{3,7}"), Some((3, 7)));
        assert_eq!(parse_dot_repetition("[a-z]*"), None);
    }

    #[test]
    fn union_draws_every_arm_eventually() {
        let u = Union::new(vec![Just(1u32).boxed(), Just(2u32).boxed(), Just(3u32).boxed()]);
        let mut runner = TestRunner::deterministic();
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.generate(&mut runner) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn signed_ranges_stay_in_bounds() {
        let mut runner = TestRunner::deterministic();
        for _ in 0..1_000 {
            let v = (-5i32..7).generate(&mut runner);
            assert!((-5..7).contains(&v));
        }
    }
}
