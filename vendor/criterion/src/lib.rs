//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the benchmark API surface its `benches/` use:
//! [`Criterion::benchmark_group`], `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Instead of upstream's statistical machinery it runs each
//! benchmark for a fixed warm-up plus a measured batch and prints a
//! median-of-runs wall-clock estimate — enough to compare orders of
//! magnitude locally and to keep `cargo bench` compiling and running.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// An id that is just the parameter rendering.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; runs the measured routine.
pub struct Bencher {
    samples: u64,
    last: Duration,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.last = start.elapsed() / self.samples as u32;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Sets the per-benchmark time target (accepted, unused).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher { samples: self.sample_size, last: Duration::ZERO };
        f(&mut bencher);
        self.report(&id, bencher.last);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher { samples: self.sample_size, last: Duration::ZERO };
        f(&mut bencher, input);
        self.report(&id, bencher.last);
        self
    }

    fn report(&mut self, id: &BenchmarkId, per_iter: Duration) {
        println!("{}/{:<28} {:>12.3?}/iter", self.name, id.id, per_iter);
        self.criterion.benchmarks_run += 1;
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10 }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group-runner function, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_count_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function(BenchmarkId::from_parameter(1), |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("f", 2), &5u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(calls >= 3);
        assert_eq!(c.benchmarks_run, 2);
    }
}
